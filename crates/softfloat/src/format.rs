//! Software model of the FloPoCo floating-point format.
//!
//! A FloPoCo number with exponent width `we` and fraction width `wf` is a
//! bit vector `exc(2) | sign(1) | exp(we) | frac(wf)` (MSB first):
//!
//! * `exc = 00` → zero, `01` → normal, `10` → infinity, `11` → NaN;
//! * normal values are `(-1)^sign · 1.frac · 2^(exp - bias)` with
//!   `bias = 2^(we-1) - 1`;
//! * there are **no subnormals** — results below the minimum exponent flush
//!   to zero — and no reserved exponent codes (exceptions live in `exc`).
//!
//! The paper instantiates `we = 6`, `wf = 26` ([`FpFormat::PAPER`]).
//!
//! Rounding is round-to-nearest-even throughout. The algorithms here are
//! written to mirror the gate-level generators in [`crate::gen`] step by
//! step so that the two agree bit-for-bit.

/// Exception class of a FloPoCo number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpClass {
    /// `exc = 00`.
    Zero,
    /// `exc = 01`.
    Normal,
    /// `exc = 10`.
    Infinity,
    /// `exc = 11`.
    NaN,
}

impl FpClass {
    /// The two-bit exception code.
    pub fn code(self) -> u64 {
        match self {
            FpClass::Zero => 0,
            FpClass::Normal => 1,
            FpClass::Infinity => 2,
            FpClass::NaN => 3,
        }
    }

    /// Decodes a two-bit exception code.
    pub fn from_code(c: u64) -> Self {
        match c & 3 {
            0 => FpClass::Zero,
            1 => FpClass::Normal,
            2 => FpClass::Infinity,
            _ => FpClass::NaN,
        }
    }
}

/// A FloPoCo floating-point format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpFormat {
    /// Exponent width in bits.
    pub we: u32,
    /// Fraction (mantissa) width in bits.
    pub wf: u32,
}

impl FpFormat {
    /// The format used in the paper: 6-bit exponent, 26-bit mantissa.
    pub const PAPER: FpFormat = FpFormat { we: 6, wf: 26 };

    /// A tiny format for exhaustive testing.
    pub const TINY: FpFormat = FpFormat { we: 3, wf: 2 };

    /// Creates a format; widths must fit the `u64` backing store.
    pub fn new(we: u32, wf: u32) -> Self {
        assert!((2..=11).contains(&we), "exponent width out of range");
        assert!((1..=52).contains(&wf), "fraction width out of range");
        assert!(3 + we + wf <= 64);
        FpFormat { we, wf }
    }

    /// Total bit width: 2 exception + 1 sign + we + wf.
    pub fn width(self) -> u32 {
        3 + self.we + self.wf
    }

    /// Exponent bias `2^(we-1) - 1`.
    pub fn bias(self) -> i64 {
        (1i64 << (self.we - 1)) - 1
    }

    /// Largest storable exponent field value.
    pub fn max_exp(self) -> i64 {
        (1i64 << self.we) - 1
    }

    /// Packs fields into raw bits.
    pub fn pack(self, class: FpClass, sign: bool, exp: u64, frac: u64) -> u64 {
        debug_assert!(exp < (1 << self.we));
        debug_assert!(frac < (1 << self.wf));
        class.code() << (self.we + self.wf + 1)
            | (sign as u64) << (self.we + self.wf)
            | exp << self.wf
            | frac
    }

    /// Extracts the exception class.
    pub fn class_of(self, bits: u64) -> FpClass {
        FpClass::from_code(bits >> (self.we + self.wf + 1))
    }

    /// Extracts the sign bit.
    pub fn sign_of(self, bits: u64) -> bool {
        (bits >> (self.we + self.wf)) & 1 == 1
    }

    /// Extracts the exponent field.
    pub fn exp_of(self, bits: u64) -> u64 {
        (bits >> self.wf) & ((1 << self.we) - 1)
    }

    /// Extracts the fraction field.
    pub fn frac_of(self, bits: u64) -> u64 {
        bits & ((1 << self.wf) - 1)
    }
}

/// A FloPoCo value: raw bits plus its format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpValue {
    /// Raw encoding, LSB-aligned ( width() significant bits).
    pub bits: u64,
    /// The format the bits are encoded in.
    pub format: FpFormat,
}

impl FpValue {
    /// Positive zero.
    pub fn zero(format: FpFormat) -> Self {
        Self { bits: format.pack(FpClass::Zero, false, 0, 0), format }
    }

    /// Signed zero.
    pub fn signed_zero(format: FpFormat, sign: bool) -> Self {
        Self { bits: format.pack(FpClass::Zero, sign, 0, 0), format }
    }

    /// Signed infinity.
    pub fn infinity(format: FpFormat, sign: bool) -> Self {
        Self { bits: format.pack(FpClass::Infinity, sign, 0, 0), format }
    }

    /// Canonical NaN.
    pub fn nan(format: FpFormat) -> Self {
        Self { bits: format.pack(FpClass::NaN, false, 0, 0), format }
    }

    /// Wraps raw bits in a format.
    pub fn from_bits(bits: u64, format: FpFormat) -> Self {
        Self { bits: bits & ((1u64 << format.width()) - 1), format }
    }

    /// Exception class.
    pub fn class(self) -> FpClass {
        self.format.class_of(self.bits)
    }

    /// Sign bit.
    pub fn sign(self) -> bool {
        self.format.sign_of(self.bits)
    }

    /// Exponent field.
    pub fn exp(self) -> u64 {
        self.format.exp_of(self.bits)
    }

    /// Fraction field.
    pub fn frac(self) -> u64 {
        self.format.frac_of(self.bits)
    }

    /// Significand with the hidden leading one (`wf + 1` bits).
    fn sig(self) -> u64 {
        (1u64 << self.format.wf) | self.frac()
    }

    /// Converts an `f64` into the format with round-to-nearest-even.
    ///
    /// Overflow saturates to infinity, underflow flushes to (signed) zero —
    /// FloPoCo has no subnormals.
    pub fn from_f64(x: f64, format: FpFormat) -> Self {
        if x.is_nan() {
            return Self::nan(format);
        }
        let sign = x.is_sign_negative();
        if x.is_infinite() {
            return Self::infinity(format, sign);
        }
        if x == 0.0 {
            return Self::signed_zero(format, sign);
        }
        let bits = x.abs().to_bits();
        let mut raw_e = ((bits >> 52) & 0x7FF) as i64;
        let mut m52 = bits & ((1u64 << 52) - 1);
        let mut e2: i64;
        if raw_e == 0 {
            // subnormal f64: normalize manually
            let lz = m52.leading_zeros() as i64 - 11; // bits above position 52
            m52 <<= lz + 1;
            m52 &= (1u64 << 52) - 1;
            raw_e = 1 - (lz + 1);
            e2 = raw_e - 1023;
        } else {
            e2 = raw_e - 1023;
        }
        let wf = format.wf;
        // Round 52-bit fraction to wf bits (RNE).
        let mut frac;
        if wf >= 52 {
            frac = m52 << (wf - 52);
        } else {
            let shift = 52 - wf;
            let keep = m52 >> shift;
            let guard = (m52 >> (shift - 1)) & 1;
            let sticky = m52 & ((1u64 << (shift - 1)) - 1) != 0;
            frac = keep;
            if guard == 1 && (sticky || keep & 1 == 1) {
                frac += 1;
                if frac >> wf == 1 {
                    frac = 0;
                    e2 += 1;
                }
            }
        }
        let stored = e2 + format.bias();
        if stored < 0 {
            return Self::signed_zero(format, sign);
        }
        if stored > format.max_exp() {
            return Self::infinity(format, sign);
        }
        Self {
            bits: format.pack(FpClass::Normal, sign, stored as u64, frac),
            format,
        }
    }

    /// Converts to `f64` (always exact for `wf <= 52`).
    pub fn to_f64(self) -> f64 {
        match self.class() {
            FpClass::NaN => f64::NAN,
            FpClass::Infinity => {
                if self.sign() {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            FpClass::Zero => {
                if self.sign() {
                    -0.0
                } else {
                    0.0
                }
            }
            FpClass::Normal => {
                let m = 1.0 + self.frac() as f64 / (1u64 << self.format.wf) as f64;
                let e = self.exp() as i64 - self.format.bias();
                let v = m * (e as f64).exp2();
                if self.sign() {
                    -v
                } else {
                    v
                }
            }
        }
    }

    /// Floating-point multiplication (RNE), mirroring [`crate::gen::gen_mul`].
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: FpValue) -> FpValue {
        let f = self.format;
        assert_eq!(f, rhs.format);
        let (ca, cb) = (self.class(), rhs.class());
        let sign = self.sign() ^ rhs.sign();
        use FpClass::*;
        // Exception resolution, in the same priority order as the netlist.
        if ca == NaN
            || cb == NaN
            || (ca == Zero && cb == Infinity)
            || (ca == Infinity && cb == Zero)
        {
            return FpValue::nan(f);
        }
        if ca == Infinity || cb == Infinity {
            return FpValue::infinity(f, sign);
        }
        if ca == Zero || cb == Zero {
            return FpValue::signed_zero(f, sign);
        }
        let wf = f.wf;
        let prod = (self.sig() as u128) * (rhs.sig() as u128); // 2wf+2 bits
        let norm = ((prod >> (2 * wf + 1)) & 1) as u64; // product in [2,4)?
        let shift = wf + norm as u32;
        let keep = (prod >> shift) as u64; // wf+1 bits incl. leading 1
        let guard = ((prod >> (shift - 1)) & 1) as u64;
        let sticky = prod & ((1u128 << (shift - 1)) - 1) != 0;
        let mut s = keep;
        let mut rcarry = 0i64;
        if guard == 1 && (sticky || keep & 1 == 1) {
            s += 1;
            if s >> (wf + 1) == 1 {
                s >>= 1;
                rcarry = 1;
            }
        }
        let e = self.exp() as i64 + rhs.exp() as i64 - f.bias() + norm as i64 + rcarry;
        if e < 0 {
            return FpValue::signed_zero(f, sign);
        }
        if e > f.max_exp() {
            return FpValue::infinity(f, sign);
        }
        let frac = s & ((1u64 << wf) - 1);
        FpValue { bits: f.pack(Normal, sign, e as u64, frac), format: f }
    }

    /// Floating-point addition (RNE), mirroring [`crate::gen::gen_add`].
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: FpValue) -> FpValue {
        let f = self.format;
        assert_eq!(f, rhs.format);
        let (ca, cb) = (self.class(), rhs.class());
        use FpClass::*;
        if ca == NaN || cb == NaN || (ca == Infinity && cb == Infinity && self.sign() != rhs.sign())
        {
            return FpValue::nan(f);
        }
        if ca == Infinity {
            return FpValue::infinity(f, self.sign());
        }
        if cb == Infinity {
            return FpValue::infinity(f, rhs.sign());
        }
        if ca == Zero && cb == Zero {
            return FpValue::signed_zero(f, self.sign() && rhs.sign());
        }
        if ca == Zero {
            return rhs;
        }
        if cb == Zero {
            return self;
        }

        let wf = f.wf as u64;
        // Order by magnitude: compare exp:frac as one integer.
        let mag_a = self.exp() << f.wf | self.frac();
        let mag_b = rhs.exp() << f.wf | rhs.frac();
        let (big, small) = if mag_b > mag_a { (rhs, self) } else { (self, rhs) };
        let d = big.exp() - small.exp();
        let width = wf + 4; // significand + 3 guard bits
        let a = big.sig() << 3;
        let b_full = small.sig() << 3;
        let dc = d.min(width);
        // The shifts below are u64-safe only because `dc <= wf + 4 <= 56`:
        // `FpFormat::new` caps `wf` at 52, and `dc` is clamped to `width`
        // just above. Keep the invariant explicit at the shift sites.
        debug_assert!(
            dc <= width && width <= 56,
            "alignment shift out of range: dc={dc}, wf+4={width}"
        );
        let mut b = b_full >> dc;
        let sticky = b_full & ((1u64 << dc) - 1) != 0 && dc > 0;
        if sticky {
            b |= 1;
        }
        let eff_sub = big.sign() != small.sign();
        let sign;
        let mut e1: i64;
        let s: u64; // width bits, leading 1 at bit width-1 (normalized)
        if eff_sub {
            let diff = a - b;
            if diff == 0 {
                return FpValue::zero(f);
            }
            let lz = (diff.leading_zeros() - (64 - width as u32)) as i64;
            s = diff << lz;
            e1 = big.exp() as i64 - lz;
            sign = big.sign();
        } else {
            let sum = a + b;
            let carry = sum >> width;
            if carry == 1 {
                s = (sum >> 1) | (sum & 1);
                e1 = big.exp() as i64 + 1;
            } else {
                s = sum;
                e1 = big.exp() as i64;
            }
            sign = big.sign();
        }
        // Round: L = bit 3, G = bit 2, R|S = bits 1..0.
        let lsb = (s >> 3) & 1;
        let guard = (s >> 2) & 1;
        let rs = s & 3;
        let mut hi = s >> 3; // wf+1 bits
        if guard == 1 && (rs != 0 || lsb == 1) {
            hi += 1;
            if hi >> (wf + 1) == 1 {
                hi >>= 1;
                e1 += 1;
            }
        }
        if e1 < 0 {
            return FpValue::signed_zero(f, sign);
        }
        if e1 > f.max_exp() {
            return FpValue::infinity(f, sign);
        }
        let frac = hi & ((1u64 << wf) - 1);
        FpValue { bits: f.pack(Normal, sign, e1 as u64, frac), format: f }
    }

    /// Subtraction (`self - rhs`), via sign flip.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: FpValue) -> FpValue {
        let f = rhs.format;
        let flipped = FpValue::from_bits(rhs.bits ^ (1u64 << (f.we + f.wf)), f);
        // A zero keeps class Zero; flipping its sign bit is still a zero.
        self.add(flipped)
    }

    /// Multiply-accumulate `self * coeff + acc`, with intermediate rounding
    /// after the multiplication — exactly like the PE netlist (the paper
    /// builds the MAC from separate FloPoCo mul and add operators).
    pub fn mac(self, coeff: FpValue, acc: FpValue) -> FpValue {
        self.mul(coeff).add(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::PAPER;

    fn fp(x: f64) -> FpValue {
        FpValue::from_f64(x, F)
    }

    #[test]
    fn roundtrip_simple_values() {
        for &x in &[0.0, 1.0, -1.0, 0.5, 2.0, 3.25, -17.625, 1000.0, 2.0_f64.powi(-20)] {
            let v = fp(x);
            assert_eq!(v.to_f64(), x, "{x} must be exactly representable");
        }
        // 1e-6 is not exact in wf=26; it must round to within half an ulp.
        let v = fp(1e-6);
        assert!((v.to_f64() - 1e-6).abs() <= 1e-6 / (1u64 << 26) as f64);
    }

    #[test]
    fn classes() {
        assert_eq!(fp(f64::NAN).class(), FpClass::NaN);
        assert_eq!(fp(f64::INFINITY).class(), FpClass::Infinity);
        assert_eq!(fp(0.0).class(), FpClass::Zero);
        assert_eq!(fp(-0.0).class(), FpClass::Zero);
        assert!(fp(-0.0).sign());
        assert_eq!(fp(1.5).class(), FpClass::Normal);
    }

    #[test]
    fn mul_matches_f64_on_exact_cases() {
        let cases = [
            (2.0, 3.0),
            (1.5, -2.5),
            (0.125, 8.0),
            (-4.0, -0.25),
            (3.0, 7.0),
        ];
        for (a, b) in cases {
            assert_eq!(fp(a).mul(fp(b)).to_f64(), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn add_matches_f64_on_exact_cases() {
        let cases = [
            (1.0, 2.0),
            (1.5, -0.5),
            (100.0, 0.25),
            (-8.0, 8.0),
            (3.75, 3.75),
            (1.0, -3.0),
        ];
        for (a, b) in cases {
            assert_eq!(fp(a).add(fp(b)).to_f64(), a + b, "{a} + {b}");
        }
    }

    #[test]
    fn exceptions_propagate() {
        let inf = FpValue::infinity(F, false);
        let nan = FpValue::nan(F);
        let zero = FpValue::zero(F);
        assert_eq!(zero.mul(inf).class(), FpClass::NaN);
        assert_eq!(inf.mul(fp(2.0)).class(), FpClass::Infinity);
        assert_eq!(nan.add(fp(1.0)).class(), FpClass::NaN);
        assert_eq!(inf.add(inf).class(), FpClass::Infinity);
        assert_eq!(inf.sub(inf).class(), FpClass::NaN);
        assert_eq!(zero.add(fp(5.5)).to_f64(), 5.5);
    }

    #[test]
    fn overflow_and_underflow_saturate() {
        let big = fp(2.0f64.powi(30));
        assert_eq!(big.mul(big).class(), FpClass::Infinity, "2^60 overflows we=6");
        let small = fp(2.0f64.powi(-30));
        assert_eq!(small.mul(small).class(), FpClass::Zero, "2^-60 underflows");
    }

    #[test]
    fn rounding_is_nearest_even() {
        // With wf=2: representables near 1.0 step by 0.25.
        let t = FpFormat::TINY;
        let x = FpValue::from_f64(1.125, t); // exactly between 1.0 and 1.25
        assert_eq!(x.to_f64(), 1.0, "ties to even (frac 00)");
        let y = FpValue::from_f64(1.375, t); // between 1.25 and 1.5
        assert_eq!(y.to_f64(), 1.5, "ties to even (frac 10)");
    }

    #[test]
    fn mac_is_mul_then_add() {
        let (a, c, acc) = (fp(1.5), fp(2.5), fp(10.0));
        assert_eq!(a.mac(c, acc).bits, a.mul(c).add(acc).bits);
        assert_eq!(a.mac(c, acc).to_f64(), 13.75);
    }

    #[test]
    fn add_error_is_bounded() {
        let mut rng = logic::SplitMix64::new(2024);
        for _ in 0..2000 {
            let a = (rng.unit_f64() - 0.5) * 100.0;
            let b = (rng.unit_f64() - 0.5) * 100.0;
            let exact = a + b;
            let got = fp(a).add(fp(b)).to_f64();
            // Inputs are themselves rounded, so allow a few ulp.
            let tol = exact.abs().max(a.abs().max(b.abs())) * 4.0 / (1u64 << 26) as f64;
            assert!(
                (got - exact).abs() <= tol + 1e-300,
                "a={a} b={b} got={got} exact={exact}"
            );
        }
    }

    #[test]
    fn mul_error_is_bounded() {
        let mut rng = logic::SplitMix64::new(77);
        for _ in 0..2000 {
            let a = (rng.unit_f64() - 0.5) * 8.0;
            let b = (rng.unit_f64() - 0.5) * 8.0;
            let exact = a * b;
            let got = fp(a).mul(fp(b)).to_f64();
            let tol = exact.abs() * 4.0 / (1u64 << 26) as f64;
            assert!(
                (got - exact).abs() <= tol + 1e-300,
                "a={a} b={b} got={got} exact={exact}"
            );
        }
    }

    #[test]
    fn sub_of_equal_is_positive_zero() {
        let v = fp(3.5);
        let r = v.sub(v);
        assert_eq!(r.class(), FpClass::Zero);
        assert!(!r.sign());
    }

    #[test]
    fn commutativity_of_add_and_mul() {
        let mut rng = logic::SplitMix64::new(5);
        for _ in 0..500 {
            let a = fp((rng.unit_f64() - 0.5) * 1e3);
            let b = fp((rng.unit_f64() - 0.5) * 1e3);
            assert_eq!(a.add(b).bits, b.add(a).bits);
            assert_eq!(a.mul(b).bits, b.mul(a).bits);
        }
    }
}
