//! Word-level gate builders on top of [`logic::Aig`].
//!
//! All words are slices of literals, **LSB first**. These are the primitive
//! datapath blocks the FloPoCo operator generators are assembled from:
//! ripple-carry adders, comparators, barrel shifters with sticky collection,
//! leading-zero counters (via thermometer code + population count) and the
//! array multiplier. Nothing here uses dedicated arithmetic resources — as
//! in the paper, the operators are pure LUT fabric candidates.

use logic::{Aig, Lit};

/// Full adder: returns `(sum, carry)`.
pub fn full_adder(g: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let ab = g.xor(a, b);
    let sum = g.xor(ab, c);
    let t1 = g.and(a, b);
    let t2 = g.and(ab, c);
    let carry = g.or(t1, t2);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width words plus carry-in.
/// Returns `(sum, carry_out)`; `sum` has the operand width.
pub fn add(g: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len());
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(g, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Subtraction `a - b` via two's complement; returns `(difference, no_borrow)`.
/// `no_borrow` is true iff `a >= b` (unsigned).
pub fn sub(g: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    add(g, a, &nb, Lit::TRUE)
}

/// Increment-by-condition: `a + inc` where `inc` is a single bit.
pub fn add_bit(g: &mut Aig, a: &[Lit], inc: Lit) -> (Vec<Lit>, Lit) {
    let mut carry = inc;
    let mut sum = Vec::with_capacity(a.len());
    for &x in a {
        sum.push(g.xor(x, carry));
        carry = g.and(x, carry);
    }
    (sum, carry)
}

/// Unsigned comparison `a >= b` (logarithmic depth via the prefix network).
pub fn ge(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, no_borrow) = sub_prefix(g, a, b);
    no_borrow
}

/// Word-wide 2:1 multiplexer: `sel ? t : e`.
pub fn mux_word(g: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len());
    t.iter().zip(e).map(|(&x, &y)| g.mux(sel, x, y)).collect()
}

/// AND of every bit with one literal (masking).
pub fn mask_word(g: &mut Aig, word: &[Lit], bit: Lit) -> Vec<Lit> {
    word.iter().map(|&w| g.and(w, bit)).collect()
}

/// OR-reduction of a word.
pub fn or_all(g: &mut Aig, word: &[Lit]) -> Lit {
    g.or_many(word)
}

/// Equality of a word with a constant.
pub fn eq_const(g: &mut Aig, word: &[Lit], value: u64) -> Lit {
    let lits: Vec<Lit> = word
        .iter()
        .enumerate()
        .map(|(i, &w)| if (value >> i) & 1 == 1 { w } else { !w })
        .collect();
    g.and_many(&lits)
}

/// Is the word exactly zero?
pub fn is_zero(g: &mut Aig, word: &[Lit]) -> Lit {
    !or_all(g, word)
}

/// Logical right barrel shifter with sticky collection.
///
/// Shifts `a` right by the unsigned amount `amt` (LSB-first bits). Bits
/// shifted out are OR-ed into the returned `sticky`. Shift amounts `>=
/// a.len()` produce an all-zero word with all input bits in the sticky.
pub fn shr_sticky(g: &mut Aig, a: &[Lit], amt: &[Lit]) -> (Vec<Lit>, Lit) {
    let w = a.len();
    let mut cur: Vec<Lit> = a.to_vec();
    let mut sticky = Lit::FALSE;
    for (k, &sel) in amt.iter().enumerate() {
        let dist = 1usize.checked_shl(k as u32).unwrap_or(usize::MAX);
        if dist >= w {
            // Shifting by this stage empties the word entirely.
            let any = or_all(g, &cur);
            let gone = g.and(sel, any);
            sticky = g.or(sticky, gone);
            cur = cur.iter().map(|&b| g.and(b, !sel)).collect();
        } else {
            // Bits [0, dist) fall off when this stage is selected.
            let dropped = or_all(g, &cur[..dist]);
            let gone = g.and(sel, dropped);
            sticky = g.or(sticky, gone);
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if i + dist < w { cur[i + dist] } else { Lit::FALSE };
                next.push(g.mux(sel, shifted, cur[i]));
            }
            cur = next;
        }
    }
    (cur, sticky)
}

/// Logical left barrel shifter (bits shifted past the top are dropped).
pub fn shl(g: &mut Aig, a: &[Lit], amt: &[Lit]) -> Vec<Lit> {
    let w = a.len();
    let mut cur: Vec<Lit> = a.to_vec();
    for (k, &sel) in amt.iter().enumerate() {
        let dist = 1usize.checked_shl(k as u32).unwrap_or(usize::MAX);
        if dist >= w {
            cur = cur.iter().map(|&b| g.and(b, !sel)).collect();
        } else {
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if i >= dist { cur[i - dist] } else { Lit::FALSE };
                next.push(g.mux(sel, shifted, cur[i]));
            }
            cur = next;
        }
    }
    cur
}

/// Population count: number of set bits, as a binary word of
/// `ceil(log2(len+1))` bits.
pub fn popcount(g: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    match bits.len() {
        0 => vec![],
        1 => vec![bits[0]],
        n => {
            let (lo, hi) = bits.split_at(n / 2);
            let a = popcount(g, lo);
            let b = popcount(g, hi);
            let w = a.len().max(b.len()) + 1;
            let pad = |v: &[Lit], w: usize| {
                let mut v = v.to_vec();
                v.resize(w, Lit::FALSE);
                v
            };
            let (a, b) = (pad(&a, w), pad(&b, w));
            let (mut s, _) = add(g, &a, &b, Lit::FALSE);
            // Trim to the provably sufficient width.
            let need = usize::BITS as usize - n.leading_zeros() as usize;
            s.truncate(need.max(1));
            s
        }
    }
}

/// Leading-zero count of a word (MSB = last element of the slice).
///
/// Returns a binary word wide enough to hold `a.len()`. Logarithmic depth:
/// the thermometer code is built with a suffix-OR scan, then popcounted.
pub fn lzc(g: &mut Aig, a: &[Lit]) -> Vec<Lit> {
    let w = a.len();
    // Suffix OR scan: or_suf[i] = a[i] | a[i+1] | ... | a[w-1], log depth.
    let mut or_suf: Vec<Lit> = a.to_vec();
    let mut dist = 1;
    while dist < w {
        let prev = or_suf.clone();
        for i in 0..w {
            if i + dist < w {
                or_suf[i] = g.or(prev[i], prev[i + dist]);
            }
        }
        dist <<= 1;
    }
    // z[i] = "all of a[i..] are zero" — a thermometer code whose popcount
    // is the number of leading zeros.
    let z: Vec<Lit> = or_suf.iter().map(|&s| !s).collect();
    popcount(g, &z)
}

/// Unsigned array multiplier (`a.len() + b.len()` result bits).
///
/// Row-wise accumulation of AND partial products with ripple-carry rows —
/// the classic array multiplier whose critical path is O(n + m), matching a
/// LUT-only FPGA implementation with no DSP blocks.
pub fn mul_array(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return vec![];
    }
    let mut result = vec![Lit::FALSE; n + m];
    // `upper` holds bits [j+1, j+1+n) of the running accumulation after row j.
    let row0 = mask_word(g, a, b[0]);
    result[0] = row0[0];
    let mut upper: Vec<Lit> = row0[1..].to_vec(); // n-1 bits after row 0
    for (j, &bj) in b.iter().enumerate().skip(1) {
        let pp = mask_word(g, a, bj);
        let mut ext = upper.clone();
        ext.resize(n, Lit::FALSE); // n bits to match the partial product
        let (sum, carry) = add(g, &ext, &pp, Lit::FALSE);
        result[j] = sum[0];
        upper = sum[1..].to_vec();
        upper.push(carry); // back to n bits
    }
    // Remaining high bits land above the emitted low bits.
    for (k, &u) in upper.iter().enumerate() {
        result[m + k] = u;
    }
    result
}

/// Kogge–Stone prefix adder: logarithmic depth, used for the wide
/// significand datapaths so the mapped logic depth matches an
/// FPGA-oriented operator generator (FloPoCo emits fast adders too).
/// Returns `(sum, carry_out)`.
pub fn add_prefix(g: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return (vec![], cin);
    }
    // Generate/propagate per bit.
    let mut gen: Vec<Lit> = Vec::with_capacity(n);
    let mut pro: Vec<Lit> = Vec::with_capacity(n);
    for i in 0..n {
        gen.push(g.and(a[i], b[i]));
        pro.push(g.xor(a[i], b[i]));
    }
    let p0 = pro.clone();
    // Parallel prefix (Kogge–Stone): after the scan, gen[i]/pro[i] describe
    // the group [0..=i].
    let mut dist = 1;
    while dist < n {
        let (prev_g, prev_p) = (gen.clone(), pro.clone());
        for i in dist..n {
            let t = g.and(prev_p[i], prev_g[i - dist]);
            gen[i] = g.or(prev_g[i], t);
            pro[i] = g.and(prev_p[i], prev_p[i - dist]);
        }
        dist <<= 1;
    }
    // Carries: c[0] = cin, c[i] = G[0..i-1] | P[0..i-1] & cin.
    let mut sum = Vec::with_capacity(n);
    sum.push(g.xor(p0[0], cin));
    for i in 1..n {
        let pc = g.and(pro[i - 1], cin);
        let c = g.or(gen[i - 1], pc);
        sum.push(g.xor(p0[i], c));
    }
    let pc = g.and(pro[n - 1], cin);
    let cout = g.or(gen[n - 1], pc);
    (sum, cout)
}

/// Prefix subtraction `a - b` (two's complement; returns `(diff, no_borrow)`).
pub fn sub_prefix(g: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    add_prefix(g, a, &nb, Lit::TRUE)
}

/// Logarithmic-depth conditional incrementer `a + inc`.
pub fn inc_prefix(g: &mut Aig, a: &[Lit], inc: Lit) -> (Vec<Lit>, Lit) {
    let n = a.len();
    if n == 0 {
        return (vec![], inc);
    }
    // Inclusive AND-scan: scan[i] = a[0] & ... & a[i], log-depth.
    let mut scan: Vec<Lit> = a.to_vec();
    let mut dist = 1;
    while dist < n {
        let prev = scan.clone();
        for i in dist..n {
            scan[i] = g.and(prev[i], prev[i - dist]);
        }
        dist <<= 1;
    }
    // Carry into bit i is inc & a[0..i) = inc & scan[i-1].
    let mut sum = Vec::with_capacity(n);
    sum.push(g.xor(a[0], inc));
    for i in 1..n {
        let c = g.and(inc, scan[i - 1]);
        sum.push(g.xor(a[i], c));
    }
    let cout = g.and(inc, scan[n - 1]);
    (sum, cout)
}

/// Carry-save (Wallace) multiplier with a prefix final adder:
/// logarithmic-depth reduction of the partial-product rows.
pub fn mul_csa(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return vec![];
    }
    let w = n + m;
    // Partial products as full-width addends (constant-false padding folds
    // away in the hash-consed AIG).
    let mut addends: Vec<Vec<Lit>> = Vec::with_capacity(m);
    for (j, &bj) in b.iter().enumerate() {
        let mut row = vec![Lit::FALSE; w];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = g.and(ai, bj);
        }
        addends.push(row);
    }
    // 3:2 compression until two rows remain.
    while addends.len() > 2 {
        let mut next: Vec<Vec<Lit>> = Vec::with_capacity(addends.len() * 2 / 3 + 1);
        let mut iter = addends.chunks_exact(3);
        for tri in &mut iter {
            let (x, y, z) = (&tri[0], &tri[1], &tri[2]);
            let mut s = Vec::with_capacity(w);
            let mut c = vec![Lit::FALSE; w];
            for i in 0..w {
                let xy = g.xor(x[i], y[i]);
                s.push(g.xor(xy, z[i]));
                if i + 1 < w {
                    let t1 = g.and(x[i], y[i]);
                    let t2 = g.and(z[i], xy);
                    c[i + 1] = g.or(t1, t2);
                }
            }
            next.push(s);
            next.push(c);
        }
        next.extend(iter.remainder().iter().cloned());
        addends = next;
    }
    if addends.len() == 1 {
        return addends.pop().unwrap();
    }
    let (sum, _) = add_prefix(g, &addends[0], &addends[1], Lit::FALSE);
    sum
}

/// Classic carry-save **array** multiplier with a fast final adder.
///
/// This is the structure FloPoCo emits for a LUT-only fabric (no DSP
/// blocks): one AND partial-product layer (n·m gates) and a linear chain of
/// carry-save rows whose carries flow to the next row, resolved by a single
/// carry-propagate adder at the bottom. Depth is O(n + m); the
/// partial-product layer is exactly what constant-coefficient
/// specialization folds away in the parameterized flow.
pub fn mul_carry_save(g: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return vec![];
    }
    let mut result = vec![Lit::FALSE; n + m];
    // Pending value in carry-save form, re-aligned to the current row:
    // before row j, (s + c) · 2^j is the not-yet-final part of the product.
    let mut s = vec![Lit::FALSE; n];
    let mut c = vec![Lit::FALSE; n];
    for (j, &bj) in b.iter().enumerate() {
        let pp = mask_word(g, a, bj);
        let mut ns = Vec::with_capacity(n);
        let mut nc = vec![Lit::FALSE; n + 1];
        for i in 0..n {
            let (si, ci) = full_adder(g, s[i], c[i], pp[i]);
            ns.push(si);
            nc[i + 1] = ci;
        }
        // Bit j of the product is final: no later row reaches it.
        result[j] = ns[0];
        // Shift the alignment down by one for the next row.
        s = ns[1..].to_vec();
        s.push(Lit::FALSE);
        c = nc[1..].to_vec();
    }
    // Resolve the remaining carry-save state with one fast adder; the
    // product fits n+m bits, so the final carry-out is always zero.
    let (fin, _zero_cout) = add_prefix(g, &s, &c, Lit::FALSE);
    result[m..m + n].copy_from_slice(&fin);
    result
}

/// Builds a word of constant bits.
pub fn const_word(value: u64, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| if (value >> i) & 1 == 1 { Lit::TRUE } else { Lit::FALSE })
        .collect()
}

/// Interprets simulation words as an LSB-first integer for testing.
pub fn word_value(bits: &[u64], lane: usize) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &w)| acc | (((w >> lane) & 1) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::aig::InputKind;
    use logic::sim::simulate_u64;
    use logic::SplitMix64;

    /// Builds a graph computing `f` over two input words and checks it
    /// against `reference` on random stimuli.
    fn check_binop(
        wa: usize,
        wb: usize,
        build: impl Fn(&mut Aig, &[Lit], &[Lit]) -> Vec<Lit>,
        reference: impl Fn(u64, u64) -> u64,
        out_width: usize,
    ) {
        let mut g = Aig::new();
        let a = g.input_vec("a", wa, InputKind::Regular);
        let b = g.input_vec("b", wb, InputKind::Regular);
        let r = build(&mut g, &a, &b);
        assert_eq!(r.len(), out_width);
        g.add_output_vec("r", &r);
        let mut rng = SplitMix64::new(42);
        for _ in 0..200 {
            let va = rng.next_u64() & ((1u64 << wa) - 1);
            let vb = rng.next_u64() & ((1u64 << wb) - 1);
            let mut words = Vec::new();
            for i in 0..wa {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..wb {
                words.push(if (vb >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out.iter().enumerate().fold(0u64, |acc, (i, &w)| {
                acc | ((w & 1) << i)
            });
            assert_eq!(got, reference(va, vb), "a={va:#x} b={vb:#x}");
        }
    }

    #[test]
    fn ripple_adder() {
        check_binop(
            16,
            16,
            |g, a, b| {
                let (mut s, c) = add(g, a, b, Lit::FALSE);
                s.push(c);
                s
            },
            |a, b| a + b,
            17,
        );
    }

    #[test]
    fn subtractor_and_ge() {
        check_binop(
            12,
            12,
            |g, a, b| {
                let (mut d, nb) = sub(g, a, b);
                d.push(nb);
                d
            },
            |a, b| (a.wrapping_sub(b) & 0xFFF) | (((a >= b) as u64) << 12),
            13,
        );
    }

    #[test]
    fn multiplier_small() {
        check_binop(
            8,
            8,
            mul_array,
            |a, b| a * b,
            16,
        );
    }

    #[test]
    fn multiplier_asymmetric() {
        check_binop(5, 9, mul_array, |a, b| a * b, 14);
    }

    #[test]
    fn multiplier_27x27_random() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 27, InputKind::Regular);
        let b = g.input_vec("b", 27, InputKind::Regular);
        let r = mul_array(&mut g, &a, &b);
        g.add_output_vec("r", &r);
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let va = rng.next_u64() & ((1 << 27) - 1);
            let vb = rng.next_u64() & ((1 << 27) - 1);
            let mut words = Vec::new();
            for i in 0..27 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..27 {
                words.push(if (vb >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            assert_eq!(got, va * vb);
        }
    }

    #[test]
    fn prefix_adder_matches_ripple() {
        check_binop(
            20,
            20,
            |g, a, b| {
                let (mut s, c) = add_prefix(g, a, b, Lit::FALSE);
                s.push(c);
                s
            },
            |a, b| a + b,
            21,
        );
        // With carry-in set.
        check_binop(
            13,
            13,
            |g, a, b| {
                let (mut s, c) = add_prefix(g, a, b, Lit::TRUE);
                s.push(c);
                s
            },
            |a, b| a + b + 1,
            14,
        );
    }

    #[test]
    fn prefix_adder_depth_is_logarithmic() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 32, InputKind::Regular);
        let b = g.input_vec("b", 32, InputKind::Regular);
        let (s, c) = add_prefix(&mut g, &a, &b, Lit::FALSE);
        g.add_output_vec("s", &s);
        g.add_output("c", c);
        assert!(g.depth() <= 16, "prefix adder depth {} too deep", g.depth());

        let mut g2 = Aig::new();
        let a2 = g2.input_vec("a", 32, InputKind::Regular);
        let b2 = g2.input_vec("b", 32, InputKind::Regular);
        let (s2, c2) = add(&mut g2, &a2, &b2, Lit::FALSE);
        g2.add_output_vec("s", &s2);
        g2.add_output("c", c2);
        assert!(g2.depth() >= 32, "ripple adder should be deep");
    }

    #[test]
    fn prefix_subtractor() {
        check_binop(
            16,
            16,
            |g, a, b| {
                let (mut d, nb) = sub_prefix(g, a, b);
                d.push(nb);
                d
            },
            |a, b| (a.wrapping_sub(b) & 0xFFFF) | (((a >= b) as u64) << 16),
            17,
        );
    }

    #[test]
    fn prefix_incrementer() {
        // inc as the LSB of operand b.
        check_binop(
            12,
            1,
            |g, a, b| {
                let (mut s, c) = inc_prefix(g, a, b[0]);
                s.push(c);
                s
            },
            |a, b| (a + b) & 0x1FFF,
            13,
        );
    }

    #[test]
    fn csa_multiplier_small() {
        check_binop(8, 8, mul_csa, |a, b| a * b, 16);
        check_binop(5, 9, mul_csa, |a, b| a * b, 14);
    }

    #[test]
    fn carry_save_array_multiplier() {
        check_binop(8, 8, mul_carry_save, |a, b| a * b, 16);
        check_binop(9, 5, mul_carry_save, |a, b| a * b, 14);
        check_binop(1, 7, mul_carry_save, |a, b| a * b, 8);
    }

    #[test]
    fn carry_save_array_depth_is_linear_not_quadratic() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 27, InputKind::Regular);
        let b = g.input_vec("b", 27, InputKind::Regular);
        let r = mul_carry_save(&mut g, &a, &b);
        g.add_output_vec("r", &r);
        // ~4 AND levels per row + the final prefix adder — linear in n+m,
        // far from the O(n·m) of a row-ripple accumulation.
        assert!(
            g.depth() <= 130,
            "carry-save array depth {} should be O(n+m)",
            g.depth()
        );
    }

    #[test]
    fn csa_multiplier_27x27_and_depth() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 27, InputKind::Regular);
        let b = g.input_vec("b", 27, InputKind::Regular);
        let r = mul_csa(&mut g, &a, &b);
        g.add_output_vec("r", &r);
        // Depth must be far below a row-ripple multiplier's O(n·m).
        assert!(g.depth() <= 48, "CSA multiplier depth {}", g.depth());
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let va = rng.next_u64() & ((1 << 27) - 1);
            let vb = rng.next_u64() & ((1 << 27) - 1);
            let mut words = Vec::new();
            for i in 0..27 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..27 {
                words.push(if (vb >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            assert_eq!(got, va * vb);
        }
    }

    #[test]
    fn shifter_right_with_sticky() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 16, InputKind::Regular);
        let amt = g.input_vec("amt", 5, InputKind::Regular);
        let (r, sticky) = shr_sticky(&mut g, &a, &amt);
        g.add_output_vec("r", &r);
        g.add_output("sticky", sticky);
        let mut rng = SplitMix64::new(1);
        for _ in 0..300 {
            let va = rng.next_u64() & 0xFFFF;
            let vamt = rng.next_u64() & 0x1F;
            let mut words = Vec::new();
            for i in 0..16 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..5 {
                words.push(if (vamt >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out[..16]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            let expect = if vamt >= 16 { 0 } else { va >> vamt };
            let exp_sticky = if vamt >= 16 {
                va != 0
            } else {
                va & ((1 << vamt) - 1) != 0
            };
            assert_eq!(got, expect, "a={va:#x} amt={vamt}");
            assert_eq!(out[16] & 1 == 1, exp_sticky, "sticky a={va:#x} amt={vamt}");
        }
    }

    #[test]
    fn shifter_left() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 12, InputKind::Regular);
        let amt = g.input_vec("amt", 4, InputKind::Regular);
        let r = shl(&mut g, &a, &amt);
        g.add_output_vec("r", &r);
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            let va = rng.next_u64() & 0xFFF;
            let vamt = rng.next_u64() & 0xF;
            let mut words = Vec::new();
            for i in 0..12 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..4 {
                words.push(if (vamt >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            assert_eq!(got, (va << vamt) & 0xFFF, "a={va:#x} amt={vamt}");
        }
    }

    #[test]
    fn lzc_counts_leading_zeros() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 10, InputKind::Regular);
        let r = lzc(&mut g, &a);
        g.add_output_vec("r", &r);
        for va in 0..1024u64 {
            let mut words = Vec::new();
            for i in 0..10 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            let expect = (va.leading_zeros() - 54) as u64; // 10-bit word
            assert_eq!(got, expect, "a={va:#b}");
        }
    }

    #[test]
    fn popcount_exhaustive_8() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 8, InputKind::Regular);
        let r = popcount(&mut g, &a);
        g.add_output_vec("r", &r);
        for va in 0..256u64 {
            let mut words = Vec::new();
            for i in 0..8 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &w)| acc | ((w & 1) << i));
            assert_eq!(got, va.count_ones() as u64);
        }
    }

    #[test]
    fn eq_and_zero_tests() {
        let mut g = Aig::new();
        let a = g.input_vec("a", 6, InputKind::Regular);
        let e = eq_const(&mut g, &a, 37);
        let z = is_zero(&mut g, &a);
        g.add_output("e", e);
        g.add_output("z", z);
        for va in 0..64u64 {
            let mut words = Vec::new();
            for i in 0..6 {
                words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = simulate_u64(&g, &words);
            assert_eq!(out[0] & 1 == 1, va == 37);
            assert_eq!(out[1] & 1 == 1, va == 0);
        }
    }
}
