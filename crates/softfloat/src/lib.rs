//! FloPoCo-format floating point, both as software values and as gate-level
//! netlists.
//!
//! The paper's Processing Element is a floating-point multiply-accumulate in
//! the FloPoCo format with a **6-bit exponent and a 26-bit mantissa**
//! (Section IV), built without dedicated multipliers or adders. This crate
//! reproduces that operator twice:
//!
//! * [`format`] — a bit-exact software model ([`FpFormat`], [`FpValue`]) used
//!   as the golden reference and by the VCGRA functional simulator, and
//! * [`gen`] — generators that emit the same operators as [`logic::Aig`]
//!   netlists (array multiplier, alignment shifter, leading-zero counter,
//!   rounding, exception logic), with the coefficient input annotated as a
//!   *parameter* so the parameterized tool flow can specialize it.
//!
//! The two implementations follow the same algorithm step by step and are
//! checked against each other exhaustively on narrow formats and
//! stochastically on the paper's (6, 26) format.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod format;
pub mod gates;
pub mod gen;

pub use format::{FpClass, FpFormat, FpValue};
