//! Gate-level generators for the FloPoCo operators.
//!
//! Each generator emits the same rounding/normalization/exception algorithm
//! as the software model in [`crate::format`], so hardware and software are
//! bit-exact. The MAC builder [`build_mac_pe`] is the paper's Processing
//! Element: the coefficient input can be declared a *parameter*
//! ([`logic::InputKind::Param`]), which is what the parameterized tool flow
//! exploits — for a fixed coefficient the whole multiplier array collapses
//! under symbolic constant propagation into TLUTs and TCONs.

use crate::format::FpFormat;
use crate::gates::*;
use logic::aig::InputKind;
use logic::{Aig, Lit};

/// The fields of a FloPoCo word as wires (all LSB first).
#[derive(Debug, Clone)]
pub struct FpWires {
    /// Exception code, `exc[0]` = LSB. `00` zero, `01` normal, `10` inf, `11` NaN.
    pub exc: [Lit; 2],
    /// Sign bit.
    pub sign: Lit,
    /// Exponent field (`we` bits).
    pub exp: Vec<Lit>,
    /// Fraction field (`wf` bits).
    pub frac: Vec<Lit>,
}

impl FpWires {
    /// Zero test (`exc == 00`).
    pub fn is_zero(&self, g: &mut Aig) -> Lit {
        g.and(!self.exc[1], !self.exc[0])
    }
    /// Normal test (`exc == 01`).
    pub fn is_normal(&self, g: &mut Aig) -> Lit {
        g.and(!self.exc[1], self.exc[0])
    }
    /// Infinity test (`exc == 10`).
    pub fn is_inf(&self, g: &mut Aig) -> Lit {
        g.and(self.exc[1], !self.exc[0])
    }
    /// NaN test (`exc == 11`).
    pub fn is_nan(&self, g: &mut Aig) -> Lit {
        g.and(self.exc[1], self.exc[0])
    }
    /// Significand with hidden one: `[frac..., 1]` (`wf + 1` bits).
    pub fn sig(&self) -> Vec<Lit> {
        let mut s = self.frac.clone();
        s.push(Lit::TRUE);
        s
    }
}

/// Splits a flat LSB-first word into FloPoCo fields.
pub fn split(fmt: FpFormat, bits: &[Lit]) -> FpWires {
    assert_eq!(bits.len(), fmt.width() as usize);
    let wf = fmt.wf as usize;
    let we = fmt.we as usize;
    FpWires {
        frac: bits[..wf].to_vec(),
        exp: bits[wf..wf + we].to_vec(),
        sign: bits[wf + we],
        exc: [bits[wf + we + 1], bits[wf + we + 2]],
    }
}

/// Joins FloPoCo fields back into a flat LSB-first word.
pub fn join(fmt: FpFormat, w: &FpWires) -> Vec<Lit> {
    assert_eq!(w.exp.len(), fmt.we as usize);
    assert_eq!(w.frac.len(), fmt.wf as usize);
    let mut out = Vec::with_capacity(fmt.width() as usize);
    out.extend_from_slice(&w.frac);
    out.extend_from_slice(&w.exp);
    out.push(w.sign);
    out.push(w.exc[0]);
    out.push(w.exc[1]);
    out
}

/// Sign-extends/zero-extends a word to `width` bits (zero extension).
fn zext(word: &[Lit], width: usize) -> Vec<Lit> {
    let mut v = word.to_vec();
    assert!(v.len() <= width);
    v.resize(width, Lit::FALSE);
    v
}

/// Builds the exception-code output with the standard priority
/// NaN > Inf > Zero > Normal, as two bits `[lsb, msb]`.
fn exc_priority(g: &mut Aig, nan: Lit, inf: Lit, zero: Lit) -> [Lit; 2] {
    let inf_eff = g.and(inf, !nan);
    let not_nan_inf = g.and(!nan, !inf);
    let zero_eff = g.and(zero, not_nan_inf);
    let normal = g.and(not_nan_inf, !zero_eff);
    let msb = g.or(nan, inf_eff);
    let lsb = g.or(nan, normal);
    [lsb, msb]
}

/// Floating-point multiplier netlist: returns the product word.
///
/// Mirrors [`crate::format::FpValue::mul`]: array multiplication of the
/// significands, 1-bit normalization, round-to-nearest-even with sticky,
/// exponent arithmetic in `we + 2`-bit two's complement, flush-to-zero
/// underflow and saturate-to-infinity overflow.
pub fn gen_mul(g: &mut Aig, fmt: FpFormat, x: &[Lit], y: &[Lit]) -> Vec<Lit> {
    let (we, wf) = (fmt.we as usize, fmt.wf as usize);
    let a = split(fmt, x);
    let b = split(fmt, y);

    let (za, ia, na) = (a.is_zero(g), a.is_inf(g), a.is_nan(g));
    let (zb, ib, nb) = (b.is_zero(g), b.is_inf(g), b.is_nan(g));
    let sign = g.xor(a.sign, b.sign);

    let zi = g.and(za, ib);
    let iz = g.and(ia, zb);
    let nan_t = g.or(na, nb);
    let nan_t2 = g.or(zi, iz);
    let nan = g.or(nan_t, nan_t2);
    let inf_in = g.or(ia, ib);
    let zero_in = g.or(za, zb);
    let normal_in = {
        let an = a.is_normal(g);
        let bn = b.is_normal(g);
        g.and(an, bn)
    };

    // --- normal path ---
    let sig_a = a.sig();
    let sig_b = b.sig();
    let prod = mul_carry_save(g, &sig_a, &sig_b); // 2wf+2 bits
    let norm = prod[2 * wf + 1];

    let s_hi = &prod[wf + 1..2 * wf + 2]; // wf+1 bits (norm case)
    let s_lo = &prod[wf..2 * wf + 1]; // wf+1 bits
    let s = mux_word(g, norm, s_hi, s_lo);
    let guard = g.mux(norm, prod[wf], prod[wf - 1]);
    let st_hi = or_all(g, &prod[..wf]);
    let st_lo = or_all(g, &prod[..wf - 1]);
    let sticky = g.mux(norm, st_hi, st_lo);

    let tie_or_up = g.or(sticky, s[0]);
    let rnd = g.and(guard, tie_or_up);
    let (s_r, rc) = inc_prefix(g, &s, rnd);
    let frac_n: Vec<Lit> = s_r[..wf].to_vec();

    // Exponent: ea + eb - bias + norm + rc, in we+2-bit two's complement.
    let w2 = we + 2;
    let ea = zext(&a.exp, w2);
    let eb = zext(&b.exp, w2);
    let (e1, _) = add(g, &ea, &eb, Lit::FALSE);
    let neg_bias = const_word(
        ((1u64 << w2) as i64 - fmt.bias()) as u64 & ((1u64 << w2) - 1),
        w2,
    );
    let (e2, _) = add(g, &e1, &neg_bias, Lit::FALSE);
    let (e3, _) = add_bit(g, &e2, norm);
    let (e4, _) = add_bit(g, &e3, rc);
    let under = e4[w2 - 1]; // negative
    let over = g.and(!e4[w2 - 1], e4[we]);
    let exp_n: Vec<Lit> = e4[..we].to_vec();

    // --- result classification ---
    let norm_under = g.and(normal_in, under);
    let norm_over = g.and(normal_in, over);
    let out_inf = g.or(inf_in, norm_over);
    let out_zero = g.or(zero_in, norm_under);
    let exc = exc_priority(g, nan, out_inf, out_zero);

    let not_nan = !nan;
    let sign_out = g.and(sign, not_nan);
    let normal_out = {
        let t = g.and(normal_in, !norm_over);
        g.and(t, !norm_under)
    };
    let exp_out = mask_word(g, &exp_n, normal_out);
    let frac_out = mask_word(g, &frac_n, normal_out);

    join(
        fmt,
        &FpWires { exc, sign: sign_out, exp: exp_out, frac: frac_out },
    )
}

/// Floating-point adder netlist, mirroring [`crate::format::FpValue::add`].
pub fn gen_add(g: &mut Aig, fmt: FpFormat, x: &[Lit], y: &[Lit]) -> Vec<Lit> {
    let (we, wf) = (fmt.we as usize, fmt.wf as usize);
    let a = split(fmt, x);
    let b = split(fmt, y);

    let (za, ia, na) = (a.is_zero(g), a.is_inf(g), a.is_nan(g));
    let (zb, ib, nb) = (b.is_zero(g), b.is_inf(g), b.is_nan(g));
    let (norm_a, norm_b) = (a.is_normal(g), b.is_normal(g));

    let opp = g.xor(a.sign, b.sign);
    let inf_inf = g.and(ia, ib);
    let inf_clash = g.and(inf_inf, opp);
    let nan_t = g.or(na, nb);
    let nan = g.or(nan_t, inf_clash);

    let both_zero = g.and(za, zb);
    let x_zero_only = g.and(za, norm_b); // pass through y
    let y_zero_only = g.and(zb, norm_a); // pass through x
    let normal_in = g.and(norm_a, norm_b);

    // --- magnitude ordering ---
    let mut mag_a: Vec<Lit> = a.frac.clone();
    mag_a.extend_from_slice(&a.exp);
    let mut mag_b: Vec<Lit> = b.frac.clone();
    mag_b.extend_from_slice(&b.exp);
    let a_ge_b = ge(g, &mag_a, &mag_b);
    let swap = !a_ge_b;

    let e_big = mux_word(g, swap, &b.exp, &a.exp);
    let e_small = mux_word(g, swap, &a.exp, &b.exp);
    let f_big = mux_word(g, swap, &b.frac, &a.frac);
    let f_small = mux_word(g, swap, &a.frac, &b.frac);
    let s_big = g.mux(swap, b.sign, a.sign);
    let s_small = g.mux(swap, a.sign, b.sign);

    let (d, _) = sub(g, &e_big, &e_small); // no borrow: e_big >= e_small

    let width = wf + 4;
    // A = significand << 3 (three guard bits below).
    let mut aa = vec![Lit::FALSE; 3];
    aa.extend_from_slice(&f_big);
    aa.push(Lit::TRUE);
    let mut bb0 = vec![Lit::FALSE; 3];
    bb0.extend_from_slice(&f_small);
    bb0.push(Lit::TRUE);
    debug_assert_eq!(aa.len(), width);

    let (mut bb, st) = shr_sticky(g, &bb0, &d);
    bb[0] = g.or(bb[0], st);

    let eff_sub = g.xor(s_big, s_small);

    // Add path.
    let (sum, carry) = add_prefix(g, &aa, &bb, Lit::FALSE);
    let mut shifted = Vec::with_capacity(width);
    shifted.push(g.or(sum[1], sum[0]));
    shifted.extend_from_slice(&sum[2..]);
    shifted.push(carry);
    let s_addsel = mux_word(g, carry, &shifted, &sum);
    let w2 = we + 2;
    let e_big_ext = zext(&e_big, w2);
    let (e_add, _) = add_bit(g, &e_big_ext, carry);

    // Subtract path.
    let (diff, _) = sub_prefix(g, &aa, &bb); // A >= B guaranteed
    let zero_res = is_zero(g, &diff);
    let lz = lzc(g, &diff);
    let s_sub = shl(g, &diff, &lz);
    let lz_ext = zext(&lz, w2);
    let (e_sub, _) = sub(g, &e_big_ext, &lz_ext);

    let s_fin = mux_word(g, eff_sub, &s_sub, &s_addsel);
    let e1 = mux_word(g, eff_sub, &e_sub, &e_add);

    // Round to nearest even: L = bit 3, G = bit 2, R|S = bits 1..0.
    let lsb = s_fin[3];
    let guard = s_fin[2];
    let rs = g.or(s_fin[1], s_fin[0]);
    let up = g.or(rs, lsb);
    let rnd = g.and(guard, up);
    let hi: Vec<Lit> = s_fin[3..].to_vec(); // wf+1 bits
    let (s_r, rc) = inc_prefix(g, &hi, rnd);
    let (e2, _) = add_bit(g, &e1, rc);
    let frac_n: Vec<Lit> = s_r[..wf].to_vec();

    let under = e2[w2 - 1];
    let over = g.and(!e2[w2 - 1], e2[we]);
    let exp_n: Vec<Lit> = e2[..we].to_vec();
    let cancel = g.and(eff_sub, zero_res);

    // --- result classification (same priority as the software model) ---
    let norm_over = g.and(normal_in, over);
    let inf_any = g.or(ia, ib);
    let out_inf = g.or(inf_any, norm_over);
    let under_or_cancel = g.or(under, cancel);
    let norm_zero = g.and(normal_in, under_or_cancel);
    let out_zero = g.or(both_zero, norm_zero);
    let exc = exc_priority(g, nan, out_inf, out_zero);

    // Sign, with software-model priority.
    let zz_sign = g.and(a.sign, b.sign);
    let sign_norm = {
        // cancel -> +0, else sign of bigger magnitude.
        g.and(s_big, !cancel)
    };
    let mut sign_out = sign_norm;
    sign_out = g.mux(x_zero_only, b.sign, sign_out);
    sign_out = g.mux(y_zero_only, a.sign, sign_out);
    sign_out = g.mux(both_zero, zz_sign, sign_out);
    sign_out = g.mux(ib, b.sign, sign_out);
    sign_out = g.mux(ia, a.sign, sign_out);
    sign_out = g.and(sign_out, !nan);

    // Exponent / fraction with passthrough for the zero+normal cases.
    let normal_out = {
        let t = g.and(normal_in, !norm_over);
        g.and(t, !norm_zero)
    };
    let mut exp_out = mask_word(g, &exp_n, normal_out);
    let mut frac_out = mask_word(g, &frac_n, normal_out);
    exp_out = mux_word(g, x_zero_only, &b.exp, &exp_out);
    frac_out = mux_word(g, x_zero_only, &b.frac, &frac_out);
    exp_out = mux_word(g, y_zero_only, &a.exp, &exp_out);
    frac_out = mux_word(g, y_zero_only, &a.frac, &frac_out);
    // Exception cases zero the payload (canonical encodings).
    let payload_live = {
        let t = g.or(normal_out, x_zero_only);
        g.or(t, y_zero_only)
    };
    exp_out = mask_word(g, &exp_out, payload_live);
    frac_out = mask_word(g, &frac_out, payload_live);

    join(
        fmt,
        &FpWires { exc, sign: sign_out, exp: exp_out, frac: frac_out },
    )
}

/// Multiply-accumulate netlist: `x * c + acc` (mul then add, each rounded).
pub fn gen_mac(g: &mut Aig, fmt: FpFormat, x: &[Lit], c: &[Lit], acc: &[Lit]) -> Vec<Lit> {
    let prod = gen_mul(g, fmt, x, c);
    gen_add(g, fmt, &prod, acc)
}

/// Builds the paper's Processing Element as a standalone netlist:
/// `out = x * coeff + acc` with `x` and `acc` regular inputs and `coeff`
/// of the given kind (`Param` for the parameterized flow, `Regular` for the
/// conventional flow — the circuits are structurally identical, only the
/// annotation differs, exactly as in the paper's methodology).
pub fn build_mac_pe(fmt: FpFormat, coeff_kind: InputKind) -> Aig {
    let mut g = Aig::new();
    let w = fmt.width() as usize;
    let x = g.input_vec("x", w, InputKind::Regular);
    let c = g.input_vec("coeff", w, coeff_kind);
    let acc = g.input_vec("acc", w, InputKind::Regular);
    let out = gen_mac(&mut g, fmt, &x, &c, &acc);
    g.add_output_vec("out", &out);
    g
}

/// Builds a standalone multiplier netlist (`out = x * y`).
pub fn build_mul_op(fmt: FpFormat, y_kind: InputKind) -> Aig {
    let mut g = Aig::new();
    let w = fmt.width() as usize;
    let x = g.input_vec("x", w, InputKind::Regular);
    let y = g.input_vec("y", w, y_kind);
    let out = gen_mul(&mut g, fmt, &x, &y);
    g.add_output_vec("out", &out);
    g
}

/// Builds a standalone adder netlist (`out = x + y`).
pub fn build_add_op(fmt: FpFormat) -> Aig {
    let mut g = Aig::new();
    let w = fmt.width() as usize;
    let x = g.input_vec("x", w, InputKind::Regular);
    let y = g.input_vec("y", w, InputKind::Regular);
    let out = gen_add(&mut g, fmt, &x, &y);
    g.add_output_vec("out", &out);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FpValue;
    use logic::sim::simulate_u64;
    use logic::SplitMix64;

    /// Drives a 2-input operator AIG with raw FP bit patterns and returns
    /// the raw output bits (single pattern).
    fn drive2(g: &Aig, fmt: FpFormat, va: u64, vb: u64) -> u64 {
        let w = fmt.width() as usize;
        let mut words = Vec::with_capacity(2 * w);
        for i in 0..w {
            words.push(if (va >> i) & 1 == 1 { u64::MAX } else { 0 });
        }
        for i in 0..w {
            words.push(if (vb >> i) & 1 == 1 { u64::MAX } else { 0 });
        }
        let out = simulate_u64(g, &words);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &x)| acc | ((x & 1) << i))
    }

    fn drive3(g: &Aig, fmt: FpFormat, va: u64, vb: u64, vc: u64) -> u64 {
        let w = fmt.width() as usize;
        let mut words = Vec::with_capacity(3 * w);
        for v in [va, vb, vc] {
            for i in 0..w {
                words.push(if (v >> i) & 1 == 1 { u64::MAX } else { 0 });
            }
        }
        let out = simulate_u64(g, &words);
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &x)| acc | ((x & 1) << i))
    }

    #[test]
    fn mul_exhaustive_tiny() {
        let fmt = FpFormat::TINY; // 8-bit values -> 65536 pairs
        let g = build_mul_op(fmt, InputKind::Regular);
        let n = 1u64 << fmt.width();
        for va in 0..n {
            for vb in 0..n {
                let hw = drive2(&g, fmt, va, vb);
                let sw = FpValue::from_bits(va, fmt)
                    .mul(FpValue::from_bits(vb, fmt))
                    .bits;
                assert_eq!(hw, sw, "mul {va:#x} * {vb:#x}");
            }
        }
    }

    #[test]
    fn add_exhaustive_tiny() {
        let fmt = FpFormat::TINY;
        let g = build_add_op(fmt);
        let n = 1u64 << fmt.width();
        for va in 0..n {
            for vb in 0..n {
                let hw = drive2(&g, fmt, va, vb);
                let sw = FpValue::from_bits(va, fmt)
                    .add(FpValue::from_bits(vb, fmt))
                    .bits;
                assert_eq!(hw, sw, "add {va:#x} + {vb:#x}");
            }
        }
    }

    fn random_fp_bits(rng: &mut SplitMix64, fmt: FpFormat) -> u64 {
        // Mostly normals, occasionally specials.
        let roll = rng.below(10);
        if roll < 8 {
            let sign = rng.coin() as u64;
            let exp = rng.below(1 << fmt.we);
            let frac = rng.below(1 << fmt.wf);
            fmt.pack(crate::FpClass::Normal, sign == 1, exp, frac)
        } else {
            let class = match rng.below(3) {
                0 => crate::FpClass::Zero,
                1 => crate::FpClass::Infinity,
                _ => crate::FpClass::NaN,
            };
            fmt.pack(class, rng.coin(), 0, 0)
        }
    }

    #[test]
    fn mul_random_paper_format() {
        let fmt = FpFormat::PAPER;
        let g = build_mul_op(fmt, InputKind::Regular);
        let mut rng = SplitMix64::new(123);
        for _ in 0..400 {
            let va = random_fp_bits(&mut rng, fmt);
            let vb = random_fp_bits(&mut rng, fmt);
            let hw = drive2(&g, fmt, va, vb);
            let sw = FpValue::from_bits(va, fmt)
                .mul(FpValue::from_bits(vb, fmt))
                .bits;
            assert_eq!(hw, sw, "mul {va:#x} * {vb:#x}");
        }
    }

    #[test]
    fn add_random_paper_format() {
        let fmt = FpFormat::PAPER;
        let g = build_add_op(fmt);
        let mut rng = SplitMix64::new(321);
        for _ in 0..400 {
            let va = random_fp_bits(&mut rng, fmt);
            let vb = random_fp_bits(&mut rng, fmt);
            let hw = drive2(&g, fmt, va, vb);
            let sw = FpValue::from_bits(va, fmt)
                .add(FpValue::from_bits(vb, fmt))
                .bits;
            assert_eq!(hw, sw, "add {va:#x} + {vb:#x}");
        }
    }

    #[test]
    fn mac_random_medium_format() {
        let fmt = FpFormat::new(5, 8);
        let g = build_mac_pe(fmt, InputKind::Regular);
        let mut rng = SplitMix64::new(555);
        for _ in 0..300 {
            let vx = random_fp_bits(&mut rng, fmt);
            let vc = random_fp_bits(&mut rng, fmt);
            let va = random_fp_bits(&mut rng, fmt);
            let hw = drive3(&g, fmt, vx, vc, va);
            let sw = FpValue::from_bits(vx, fmt)
                .mac(FpValue::from_bits(vc, fmt), FpValue::from_bits(va, fmt))
                .bits;
            assert_eq!(hw, sw, "mac x={vx:#x} c={vc:#x} acc={va:#x}");
        }
    }

    #[test]
    fn mac_pe_paper_format_spot_checks() {
        let fmt = FpFormat::PAPER;
        let g = build_mac_pe(fmt, InputKind::Param);
        // x*c + acc on human-readable values.
        let cases = [(1.5, 2.0, 0.5, 3.5), (3.0, -2.0, 1.0, -5.0), (0.0, 7.0, 2.5, 2.5)];
        for (x, c, acc, expect) in cases {
            let vx = FpValue::from_f64(x, fmt).bits;
            let vc = FpValue::from_f64(c, fmt).bits;
            let va = FpValue::from_f64(acc, fmt).bits;
            let hw = drive3(&g, fmt, vx, vc, va);
            assert_eq!(
                FpValue::from_bits(hw, fmt).to_f64(),
                expect,
                "{x} * {c} + {acc}"
            );
        }
    }

    #[test]
    fn pe_has_paper_scale() {
        // The paper's conventional PE occupies 2522 4-LUTs; our gate-level
        // MAC should be in the same ballpark of AND gates (thousands, not
        // hundreds or hundreds of thousands).
        let g = build_mac_pe(FpFormat::PAPER, InputKind::Param);
        let ands = g.live_ands();
        assert!(
            (3_000..60_000).contains(&ands),
            "MAC PE has {ands} live AND gates"
        );
        assert_eq!(g.num_inputs(), 3 * FpFormat::PAPER.width() as usize);
        assert_eq!(
            g.num_inputs_of(InputKind::Param),
            FpFormat::PAPER.width() as usize
        );
    }
}
