//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build container has no network access to crates.io, so this
//! crate provides the exact surface `tests/proptests.rs` uses:
//!
//! * the [`proptest!`] macro (with the block-level
//!   `#![proptest_config(...)]` inner attribute),
//! * [`ProptestConfig::with_cases`],
//! * strategies: numeric ranges (`a..b`), [`any`], tuples of
//!   strategies, and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded per
//! test from the test's name, so failures reproduce bit-for-bit. There
//! is no shrinking: a failing case reports the raw inputs via the
//! normal assert panic message. Swapping back to real proptest is a
//! one-line `Cargo.toml` change; the test source is already compatible.

#![forbid(unsafe_code)]
#![deny(clippy::dbg_macro, clippy::todo)]

/// Deterministic SplitMix64 (same algorithm as `logic::rng::SplitMix64`,
/// duplicated here so this stub stays dependency-free).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from a test name via FNV-1a so each test gets an
    /// independent, stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % n
    }
}

/// A source of random values of one type — the stub's analogue of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — arbitrary values of a primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Mix edge cases in: all-zeros / all-ones show up often
                // in real proptest via its bias machinery.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
range_float!(f32, f64);

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Block-level configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// `use proptest::prelude::*;` — everything the test grammar needs.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// `prop::collection::vec(...)` namespace.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `proptest::proptest!` for the grammar used in this repo:
/// an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items with plain
/// identifier arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}
