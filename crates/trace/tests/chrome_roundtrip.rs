//! Round-trip test for the Chrome trace-event writer: spans recorded
//! from several threads serialize to valid trace-event JSON with
//! balanced, LIFO-matched begin/end pairs and non-decreasing
//! timestamps per thread — the properties Perfetto and
//! `chrome://tracing` rely on to build slices.

use std::collections::HashMap;

use trace::json::JsonValue;
use trace::{configure, span, take_events, write_chrome_trace, TraceConfig};

// One #[test] body: the recorder is process-global, and the default
// harness runs sibling tests on concurrent threads.
#[test]
fn multithreaded_spans_round_trip_through_chrome_json() {
    configure(TraceConfig::On);
    let _ = take_events(); // isolate from any earlier recording

    std::thread::scope(|scope| {
        for worker in 0..4 {
            scope.spawn(move || {
                for i in 0..8 {
                    let mut outer = span("request");
                    outer.arg("worker", worker as u64);
                    {
                        let mut inner = span("route_wave");
                        inner.arg("nets", i as u64);
                        let _leaf = span("probe");
                    }
                }
            });
        }
    });
    {
        let mut main_span = span("serve");
        main_span.arg("note", "main-thread span with a \"quoted\" string");
    }
    configure(TraceConfig::Off);

    let path = std::env::temp_dir().join(format!("vcgra_trace_rt_{}.json", std::process::id()));
    let n = write_chrome_trace(&path).expect("trace file written");
    assert_eq!(n, 4 * 8 * 3 * 2 + 2, "every begin/end pair must be written");

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    std::fs::remove_file(&path).ok();
    let doc = trace::json::parse(&text).expect("writer output must be valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("top-level traceEvents array");
    assert_eq!(events.len(), n);

    // Per-thread begin/end stacks and timestamp monotonicity.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for ev in events {
        let name = ev.get("name").and_then(JsonValue::as_str).expect("name").to_string();
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
        let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
        let tid = ev.get("tid").and_then(JsonValue::as_f64).expect("tid") as u64;
        ev.get("pid").and_then(JsonValue::as_f64).expect("pid");

        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(ts >= prev, "timestamps must be non-decreasing per thread ({prev} -> {ts})");

        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let open = stacks.entry(tid).or_default().pop().unwrap_or_else(|| {
                    panic!("E event for {name:?} on tid {tid} with no open span")
                });
                assert_eq!(open, name, "begin/end pairs must match LIFO per thread");
            }
            other => panic!("unexpected phase {other:?} in span-only trace"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} left unbalanced spans open: {stack:?}");
    }

    // The span args survived the round trip.
    let serve_end = events
        .iter()
        .find(|e| {
            e.get("name").and_then(JsonValue::as_str) == Some("serve")
                && e.get("ph").and_then(JsonValue::as_str) == Some("E")
        })
        .expect("serve end event present");
    assert_eq!(
        serve_end.get("args").and_then(|a| a.get("note")).and_then(JsonValue::as_str),
        Some("main-thread span with a \"quoted\" string"),
    );
}
