//! Property tests for the histogram quantile math.
//!
//! Contract under test: for any recorded sample set, a reported
//! quantile lands in the *same log-linear bucket* as the exact
//! order-statistic, so it sits within one bucket width of exact
//! (relative error <= 1/SUBS = 12.5 %), and min/max/count/sum are
//! exact.

use proptest::prelude::*;
use trace::metrics::{bucket_bounds, bucket_index, Histogram};

/// Exact order statistic with the same rank rule the histogram uses:
/// the `ceil(q*n)`-th smallest sample (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn check_quantiles(values: &[u64]) {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let s = h.snapshot();

    assert_eq!(s.count, values.len() as u64);
    assert_eq!(s.min, sorted[0]);
    assert_eq!(s.max, *sorted.last().unwrap());
    assert_eq!(s.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));

    for q in [0.0, 0.50, 0.95, 0.99, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let approx = s.quantile(q);
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        let width = hi - lo;
        let diff = approx.abs_diff(exact);
        assert!(
            diff <= width,
            "q={q}: approx {approx} vs exact {exact} differ by {diff} > bucket width {width} \
             (bucket [{lo},{hi}))"
        );
    }
    // The extreme quantiles are exact, not just bucket-accurate.
    assert_eq!(s.quantile(1.0), s.max);
}

proptest! {
    #[test]
    fn quantiles_within_one_bucket_of_exact(raw in prop::collection::vec(any::<u64>(), 1..120)) {
        check_quantiles(&raw);
    }

    // Small magnitudes exercise the exact unit buckets and the first
    // octaves, where bucket-boundary off-by-ones would hide.
    #[test]
    fn small_value_quantiles_within_one_bucket(raw in prop::collection::vec(0u64..2048, 1..200)) {
        check_quantiles(&raw);
    }

    // Latency-shaped samples: microsecond-to-second nanosecond counts.
    #[test]
    fn latency_shaped_quantiles_within_one_bucket(
        raw in prop::collection::vec(1_000u64..2_000_000_000, 1..150),
    ) {
        check_quantiles(&raw);
    }
}
