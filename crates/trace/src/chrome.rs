//! Chrome trace-event serialization: turns the recorder's event buffer
//! into the JSON Array Format that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly.
//!
//! Format reference: the "Trace Event Format" document — each event is
//! an object with `name`, `ph` (phase), `ts` (microseconds, fractional
//! allowed), `pid`, `tid`, and optional `args`. Begin/end args are
//! merged onto the rendered slice by the viewer.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::span::{take_events, AttrValue, Phase, TraceEvent};

/// Serialize events to a Chrome trace-event JSON document (an object
/// with a `traceEvents` array, the variant both viewers accept).
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let pid = std::process::id();
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
            escape(ev.name),
            ev.phase.as_str(),
            ev.ts_ns as f64 / 1_000.0,
            pid,
            ev.tid
        );
        if ev.phase == Phase::Instant {
            // Thread-scoped instants; required by the format.
            out.push_str(",\"s\":\"t\"");
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", escape(k), render_attr(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

fn render_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) => n.to_string(),
        AttrValue::I64(n) => n.to_string(),
        AttrValue::F64(x) if x.is_finite() => {
            let mut s = format!("{x}");
            if !s.contains('.') && !s.contains('e') {
                s.push_str(".0");
            }
            s
        }
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Bool(b) => b.to_string(),
        AttrValue::Str(s) => escape(s),
    }
}

/// JSON string literal with the required escapes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Drain the global recorder and write its events to `path` as Chrome
/// trace-event JSON. Returns the number of events written.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<usize> {
    let events = take_events();
    if let Some(dir) = path.as_ref().parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, to_chrome_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_renders_events() {
        let evs = vec![TraceEvent {
            name: "a\"b",
            phase: Phase::Begin,
            ts_ns: 1_500,
            tid: 3,
            args: vec![("n", AttrValue::U64(7)), ("s", AttrValue::Str("x\ny".into()))],
        }];
        let doc = to_chrome_json(&evs);
        assert!(doc.contains("\"name\":\"a\\\"b\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"args\":{\"n\":7,\"s\":\"x\\ny\"}"));
        crate::json::parse(&doc).expect("writer output must be valid JSON");
    }
}
