//! The span recorder: nested begin/end spans with typed attributes,
//! collected into a global buffer and serialized by [`crate::chrome`].
//!
//! Design constraints, in priority order:
//!
//! 1. **Cheap when disabled.** Every instrumentation site in a hot path
//!    (the router's wave loop, the mapper's cut enumeration) pays exactly
//!    one relaxed atomic load and one branch when tracing is off. No
//!    allocation, no lock, no timestamp.
//! 2. **Deterministic results.** Recording only *observes*: a span guard
//!    never feeds anything back into the computation it wraps, so
//!    enabling tracing cannot perturb routed results (the par
//!    determinism suite proves this bit-for-bit).
//! 3. **Thread-safe.** Spans opened on scoped worker threads land in the
//!    same buffer under their own thread id; begin/end pairs stay
//!    balanced per thread because guards drop in LIFO order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether the global recorder accepts events.
///
/// `Off` is the default; every `span()` call then costs one relaxed
/// atomic load and one branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    #[default]
    Off,
    On,
}

/// A typed attribute value attached to a span, instant, or counter.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Chrome trace-event phase of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
    /// Counter sample (`"C"`).
    Counter,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded event. Timestamps are nanoseconds since the recorder's
/// epoch (the first `configure(On)` of the process).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: &'static str,
    pub phase: Phase,
    pub ts_ns: u64,
    pub tid: u64,
    pub args: Vec<(&'static str, AttrValue)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turn the global recorder on or off. Events recorded so far are kept
/// either way; drain them with [`take_events`].
pub fn configure(cfg: TraceConfig) {
    if cfg == TraceConfig::On {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(cfg == TraceConfig::On, Ordering::Relaxed);
}

/// The one-branch fast path every instrumentation site starts with.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain and return every event recorded so far (in global record order).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *EVENTS.lock().expect("trace buffer poisoned"))
}

/// Number of events currently buffered (without draining them).
pub fn event_count() -> usize {
    EVENTS.lock().expect("trace buffer poisoned").len()
}

fn now_ns() -> u64 {
    // Saturates to the epoch if configure(On) was never called (events
    // are only recorded when armed, so this branch is never hot).
    EPOCH.get().map_or(0, |e| e.elapsed().as_nanos() as u64)
}

fn record(ev: TraceEvent) {
    EVENTS.lock().expect("trace buffer poisoned").push(ev);
}

/// RAII guard for one span: emits a `Begin` event on creation and the
/// matching `End` on drop. Attributes added with [`Span::arg`] ride on
/// the end event (Chrome/Perfetto merge begin- and end-args onto the
/// rendered slice), so values computed *inside* the span — net counts,
/// rip-ups, hit/miss — can still be attached.
#[must_use = "a span measures the scope it is alive for; dropping it immediately records nothing"]
pub struct Span {
    name: &'static str,
    armed: bool,
    end_args: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Attach an attribute to this span (no-op when tracing is off).
    pub fn arg(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.armed {
            self.end_args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(TraceEvent {
                name: self.name,
                phase: Phase::End,
                ts_ns: now_ns(),
                tid: TID.with(|t| *t),
                args: std::mem::take(&mut self.end_args),
            });
        }
    }
}

/// Open a span. When tracing is off this is one atomic load, one branch,
/// and no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { name, armed: false, end_args: Vec::new() };
    }
    record(TraceEvent {
        name,
        phase: Phase::Begin,
        ts_ns: now_ns(),
        tid: TID.with(|t| *t),
        args: Vec::new(),
    });
    Span { name, armed: true, end_args: Vec::new() }
}

/// Record a point event with attributes.
#[inline]
pub fn instant(name: &'static str, args: Vec<(&'static str, AttrValue)>) {
    if !is_enabled() {
        return;
    }
    record(TraceEvent {
        name,
        phase: Phase::Instant,
        ts_ns: now_ns(),
        tid: TID.with(|t| *t),
        args,
    });
}

/// Record a counter sample (rendered as a track in Perfetto).
#[inline]
pub fn counter(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    record(TraceEvent {
        name,
        phase: Phase::Counter,
        ts_ns: now_ns(),
        tid: TID.with(|t| *t),
        args: vec![("value", AttrValue::U64(value))],
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // All span tests share the process-global recorder, so they run in
    // one #[test] body to avoid cross-talk under the parallel harness.
    #[test]
    fn spans_record_balanced_pairs_and_disabled_records_nothing() {
        configure(TraceConfig::Off);
        let _ = take_events();
        {
            let mut s = span("dead");
            s.arg("k", 1u64);
        }
        instant("dead", vec![]);
        counter("dead", 7);
        assert_eq!(event_count(), 0, "disabled tracing must record nothing");

        configure(TraceConfig::On);
        {
            let mut outer = span("outer");
            outer.arg("nets", 3usize);
            {
                let _inner = span("inner");
            }
        }
        counter("occupancy", 42);
        configure(TraceConfig::Off);
        let evs = take_events();
        let names: Vec<_> = evs.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", Phase::Begin),
                ("inner", Phase::Begin),
                ("inner", Phase::End),
                ("outer", Phase::End),
                ("occupancy", Phase::Counter),
            ]
        );
        // End args carry the value added mid-span.
        assert_eq!(evs[3].args, vec![("nets", AttrValue::U64(3))]);
        // Same thread throughout; timestamps never run backwards.
        for w in evs.windows(2) {
            assert_eq!(w[0].tid, w[1].tid);
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }
}
