//! `vcgra-trace` — zero-dependency observability for the VCGRA stack.
//!
//! Three layers, each usable on its own:
//!
//! - [`span`] / [`Span`]: a global span recorder. Off by default and
//!   costing one branch per call site when off; when enabled with
//!   [`configure`]`(`[`TraceConfig::On`]`)`, nested spans with typed
//!   attributes are buffered and serialized as Chrome trace-event JSON
//!   by [`write_chrome_trace`] (loadable in Perfetto or
//!   `chrome://tracing`). Every `xbench` driver exposes it as
//!   `--trace <path>`.
//! - [`Registry`]: named [`Counter`]s, [`Gauge`]s, and log-linear-bucket
//!   [`Histogram`]s with p50/p95/p99/max readout. The runtime's
//!   `Ledger` and the mapper's `MapEffort` are views over registries
//!   from this module.
//! - [`json`]: a minimal JSON parser so the trace round-trip tests and
//!   `xbench bench_diff` can consume this crate's output without any
//!   external dependency.
//!
//! Recording only observes — enabling tracing never changes computed
//! results (the par determinism suite proves routed trees are
//! bit-identical with tracing on and off).

#![forbid(unsafe_code)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome::{to_chrome_json, write_chrome_trace};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{
    configure, counter, event_count, instant, is_enabled, span, take_events, AttrValue, Phase,
    Span, TraceConfig, TraceEvent,
};
