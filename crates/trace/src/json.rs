//! A minimal recursive-descent JSON parser — just enough to round-trip
//! the crate's own trace output in tests and to let `xbench`'s
//! `bench_diff` compare benchmark records, with zero dependencies.
//!
//! Accepts standard JSON (RFC 8259). Numbers parse to `f64`; object
//! member order is preserved (benchmark records are diffed field by
//! field, and stable order keeps reports readable).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset and a short
/// description.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode the low half too.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "xé\n"}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("xé\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }
}
