//! The metrics registry: named counters, gauges, and log-linear-bucket
//! histograms with p50/p95/p99/max readout.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! over atomics: get-or-create once, then record lock-free from any
//! thread. The registry itself only takes a lock on handle creation and
//! snapshot, never on the record path.
//!
//! Histogram buckets are log-linear (HDR-style): each power-of-two
//! octave is split into [`SUBS`] linear sub-buckets, so the relative
//! width of any bucket is at most `1/SUBS` (12.5 %) while the whole
//! `u64` range fits in [`N_BUCKETS`] slots. Values below `SUBS` get
//! exact unit buckets.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Linear sub-buckets per power-of-two octave.
pub const SUBS: u64 = 8;
const SUB_BITS: u32 = 3; // log2(SUBS)
/// Total bucket count covering all of `u64`.
pub const N_BUCKETS: usize = (SUBS + (64 - SUB_BITS as u64) * SUBS) as usize;

/// Bucket index for a value. Monotone in `v`; exact for `v < SUBS`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= SUB_BITS
        let sub = (v >> (e - SUB_BITS)) & (SUBS - 1);
        (SUBS + u64::from(e - SUB_BITS) * SUBS + sub) as usize
    }
}

/// Half-open value range `[lo, hi)` covered by a bucket. `hi` saturates
/// at `u64::MAX` for the topmost octave.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUBS {
        (idx, idx + 1)
    } else {
        let e = SUB_BITS + ((idx - SUBS) / SUBS) as u32;
        let sub = (idx - SUBS) % SUBS;
        let width = 1u64 << (e - SUB_BITS);
        let lo = (1u64 << e) + sub * width;
        (lo, lo.saturating_add(width))
    }
}

/// Monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Log-linear-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner::default()))
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let h = &*self.0;
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.0;
        // Bucket counts are read first: a racing record() can then
        // only make `count` >= the bucket sum, never smaller, so
        // quantile ranks stay within the captured distribution.
        let buckets: Vec<u64> = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = h.count.load(Ordering::Relaxed);
        let min = h.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: h.sum.load(Ordering::Relaxed),
            // The running min starts at the u64::MAX sentinel; pin the
            // empty readout to 0 so consumers (bench JSON, tables) never
            // see the sentinel as a "minimum latency".
            min: if count == 0 { 0 } else { min },
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a histogram, with quantile readout.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the rank-`ceil(q*count)` sample, clamped to the observed
    /// `[min, max]`. Always within one bucket width of the exact
    /// order-statistic (the proptest suite checks this bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // `count as f64` rounds once the count has more than 53
        // significant bits, so `ceil(q * count)` can land past `count`
        // for q near 1.0 — clamp the rank back into [1, count] instead
        // of trusting the float round-trip.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max; // the top order-statistic is tracked exactly
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named-metric registry. `Default`-constructible; share with `Arc` or
/// hand out handles.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registry { .. }")
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        let g = self.inner.lock().expect("registry poisoned");
        g.counters.get(name).map_or(0, Counter::get)
    }

    /// Names and values of every counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let g = self.inner.lock().expect("registry poisoned");
        g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Names and snapshots of every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let g = self.inner.lock().expect("registry poisoned");
        g.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Human-readable table of every metric: counters and gauges as
    /// name/value rows, histograms as count/p50/p95/p99/max rows
    /// (`*_ns` metrics rendered as humanized durations).
    pub fn render_table(&self) -> String {
        let g = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        if !g.counters.is_empty() || !g.gauges.is_empty() {
            let _ = writeln!(out, "{:<38} {:>14}", "counter/gauge", "value");
            for (name, c) in &g.counters {
                let _ = writeln!(out, "{:<38} {:>14}", name, fmt_value(name, c.get()));
            }
            for (name, gg) in &g.gauges {
                let _ = writeln!(out, "{:<38} {:>14}", name, gg.get());
            }
        }
        let hists: Vec<_> = g.histograms.iter().filter(|(_, h)| h.snapshot().count > 0).collect();
        if !hists.is_empty() {
            let _ = writeln!(
                out,
                "{:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "p50", "p95", "p99", "max"
            );
            for (name, h) in hists {
                let s = h.snapshot();
                let _ = writeln!(
                    out,
                    "{:<38} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    s.count,
                    fmt_value(name, s.p50()),
                    fmt_value(name, s.p95()),
                    fmt_value(name, s.p99()),
                    fmt_value(name, s.max),
                );
            }
        }
        out
    }
}

/// Render `v` as a duration when the metric name marks it as
/// nanoseconds, else as a plain integer.
fn fmt_value(name: &str, v: u64) -> String {
    if name.ends_with("_ns") {
        fmt_ns(v)
    } else {
        v.to_string()
    }
}

/// Humanize a nanosecond count (`17.3µs`, `4.2ms`, `1.08s`).
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v < 1_000.0 {
        format!("{ns}ns")
    } else if v < 1_000_000.0 {
        format!("{:.1}µs", v / 1_000.0)
    } else if v < 1_000_000_000.0 {
        format!("{:.2}ms", v / 1_000_000.0)
    } else {
        format!("{:.2}s", v / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_cover() {
        let mut prev = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index must be monotone in the value");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && (v < hi || hi == u64::MAX), "bounds must contain v={v}: [{lo},{hi})");
            prev = i;
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn small_values_are_exact_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.p50(), 4);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.max, 7);
        assert_eq!(s.min, 1);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 28);
    }

    #[test]
    fn empty_histogram_readout_is_pinned() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0, "the u64::MAX running-min sentinel must not leak");
        assert_eq!(s.max, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantile_rank_clamps_at_count_boundaries() {
        // A count with more than 53 significant bits: `count as f64`
        // rounds up to 2^54, so the unclamped rank exceeds `count` for
        // q = 1.0. Nearly all mass in the bucket of value 4, one sample
        // at the tracked max, so the two return paths are
        // distinguishable.
        let count = (1u64 << 54) - 1;
        let mut buckets = vec![0u64; N_BUCKETS];
        buckets[bucket_index(4)] = count - 1;
        buckets[bucket_index(1000)] = 1;
        let s = HistogramSnapshot { buckets, count, sum: 0, min: 4, max: 1000 };
        assert_eq!(s.quantile(1.0), 1000, "rank clamps to count, the exact top statistic");
        assert_eq!(s.p50(), 4, "interior ranks still walk the buckets");
        // Saturated rank arithmetic: a count whose f64 image exceeds
        // u64::MAX must not walk past the distribution either.
        let mut buckets = vec![0u64; N_BUCKETS];
        buckets[bucket_index(4)] = u64::MAX;
        let s = HistogramSnapshot { buckets, count: u64::MAX, sum: 0, min: 4, max: 7 };
        assert_eq!(s.quantile(1.0), 7);
        // Rank 1 floor: q = 0.0 on a one-sample histogram.
        let mut buckets = vec![0u64; N_BUCKETS];
        buckets[bucket_index(5)] = 1;
        let s = HistogramSnapshot { buckets, count: 1, sum: 5, min: 5, max: 5 };
        assert_eq!(s.quantile(0.0), 5);
        assert_eq!(s.quantile(1.0), 5);
        // A racing record() can leave `count` ahead of the captured
        // bucket sum; the walk's fallthrough pins those ranks to `max`
        // instead of reading past the last occupied bucket.
        let s = HistogramSnapshot { buckets: vec![0; N_BUCKETS], count: 5, sum: 0, min: 1, max: 9 };
        assert_eq!(s.quantile(0.5), 9);
    }

    #[test]
    fn registry_handles_share_state() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.add(3);
        b.inc();
        assert_eq!(r.counter_value("hits"), 4);
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.gauge("depth").get(), 3);
        let h = r.histogram("lat_ns");
        h.record(10);
        assert_eq!(r.histogram("lat_ns").snapshot().count, 1);
        let table = r.render_table();
        assert!(table.contains("hits"));
        assert!(table.contains("lat_ns"));
    }
}
