//! End-to-end check of the Fig. 2 / Fig. 3 tool flows: a parameterized
//! design goes through the generic stage (synthesis → TCONMAP → TC + PPC)
//! and the specialization stage (SCG → specialized bits), and the
//! specialized circuit must be cycle-exact with the source netlist whose
//! parameters are frozen to the same values.

use logic::aig::InputKind;
use logic::fxhash::FxHashMap;
use mapping::{map_conventional, map_parameterized, MapOptions};
use softfloat::gen::build_mac_pe;
use softfloat::{FpFormat, FpValue};

/// Medium format keeps the gate-level work fast in CI while exercising the
/// full datapath structure.
const FMT: FpFormat = FpFormat { we: 5, wf: 8 };

#[test]
fn generic_plus_specialization_stage_is_sound() {
    let aig = logic::opt::sweep(&build_mac_pe(FMT, InputKind::Param));
    let design = map_parameterized(&aig, MapOptions::default());
    let cfg = dcs::ParamConfig::extract(&design);
    assert!(cfg.ppc_bits() > 0, "a parameterized MAC must have tunable bits");
    let scg = dcs::Scg::new(&design, &cfg);

    let mut rng = logic::SplitMix64::new(2024);
    for _ in 0..4 {
        // Random coefficient (the parameter word).
        let coeff = FpValue::from_f64((rng.unit_f64() - 0.5) * 8.0, FMT);
        let params = design.params_from_bits(coeff.bits);

        // SCG produces the specialized bits; the design specializes to a
        // concrete LUT/wire network; both must agree (checked inside the
        // dcs crate) and the network must match the AIG with the constant.
        let _bits = scg.specialize(&params);
        let spec = design.specialize(&params);

        // Reference: fold the parameters in the AIG itself.
        let mut fold = FxHashMap::default();
        for (idx, info) in aig.inputs().iter().enumerate() {
            if info.kind == InputKind::Param {
                // params are ordered like the design's param_names = AIG order.
                let v = design
                    .param_names
                    .iter()
                    .position(|n| n == &info.name)
                    .map(|p| params[p])
                    .unwrap();
                fold.insert(idx as u32, v);
            }
        }
        let frozen = aig.specialize(&fold);

        for round in 0..4 {
            let words: Vec<u64> = (0..frozen.num_inputs()).map(|_| rng.next_u64()).collect();
            let want = logic::sim::simulate_u64(&frozen, &words);
            let got = spec.simulate(&words);
            for (o, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    w, g,
                    "coeff {:#x}, output {o}, round {round}",
                    coeff.bits
                );
            }
        }
    }
}

#[test]
fn conventional_and_parameterized_flows_agree_functionally() {
    // For any fixed coefficient the two flows implement the same function.
    let aig = logic::opt::sweep(&build_mac_pe(FMT, InputKind::Param));
    let conv = map_conventional(&aig, MapOptions::default());
    let par = map_parameterized(&aig, MapOptions::default());

    let coeff = FpValue::from_f64(2.5, FMT);
    let params = par.params_from_bits(coeff.bits);
    let spec_par = par.specialize(&params);
    let spec_conv = conv.specialize(&[]); // no parameters honored

    // The conventional design takes the coefficient as regular inputs:
    // order is the AIG input order (x, coeff, acc).
    let w = FMT.width() as usize;
    let mut rng = logic::SplitMix64::new(77);
    for _ in 0..8 {
        let x = rng.next_u64();
        let acc = rng.next_u64();
        // Parameterized design inputs: regular only (x, acc).
        let mut words_par = Vec::new();
        for i in 0..w {
            words_par.push(((x >> i) & 1) * u64::MAX);
        }
        for i in 0..w {
            words_par.push(((acc >> i) & 1) * u64::MAX);
        }
        // Conventional inputs: x, coeff, acc.
        let mut words_conv = Vec::new();
        for i in 0..w {
            words_conv.push(((x >> i) & 1) * u64::MAX);
        }
        for i in 0..w {
            words_conv.push(((coeff.bits >> i) & 1) * u64::MAX);
        }
        for i in 0..w {
            words_conv.push(((acc >> i) & 1) * u64::MAX);
        }
        let a = spec_par.simulate(&words_par);
        let b = spec_conv.simulate(&words_conv);
        assert_eq!(a, b, "flows disagree for x={x:#x} acc={acc:#x}");
    }
}

#[test]
fn specialized_mac_computes_flopoco_mac() {
    // The whole stack vs the value model: specialize for a coefficient,
    // drive random x/acc, compare against FpValue::mac bit-for-bit.
    let aig = logic::opt::sweep(&build_mac_pe(FMT, InputKind::Param));
    let design = map_parameterized(&aig, MapOptions::default());
    let coeff = FpValue::from_f64(-1.75, FMT);
    let spec = design.specialize(&design.params_from_bits(coeff.bits));

    let w = FMT.width() as usize;
    let mut rng = logic::SplitMix64::new(5);
    for _ in 0..40 {
        let x = FpValue::from_f64((rng.unit_f64() - 0.5) * 32.0, FMT);
        let acc = FpValue::from_f64((rng.unit_f64() - 0.5) * 32.0, FMT);
        let mut words = Vec::new();
        for i in 0..w {
            words.push(((x.bits >> i) & 1) * u64::MAX);
        }
        for i in 0..w {
            words.push(((acc.bits >> i) & 1) * u64::MAX);
        }
        let out = spec.simulate(&words);
        let got = out
            .iter()
            .enumerate()
            .fold(0u64, |a, (i, &wd)| a | ((wd & 1) << i));
        let want = x.mac(coeff, acc).bits;
        assert_eq!(got, want, "x={} acc={}", x.to_f64(), acc.to_f64());
    }
}
