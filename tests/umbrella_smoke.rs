//! Smoke test of the umbrella crate: every member crate is reached
//! *through the `vcgra_repro` re-exports*, so a broken `pub use` in
//! `src/lib.rs` fails here even when the member crates themselves are
//! healthy.
//!
//! The flow mirrors the paper end-to-end at smoke scale: build a virtual
//! PE, map it with the parameterized flow, specialize it through the SCG,
//! place-and-route a reduced-format PE on the fabric, and simulate one
//! sample through the value-level model and a small VCGRA application.

use vcgra_repro::{dcs, fabric, logic, mapping, par, retina, softfloat, vcgra};

use softfloat::{FpFormat, FpValue};
use vcgra::{PeSettings, VirtualPe, VirtualPeConfig};

#[test]
fn every_reexport_carries_the_full_flow() {
    // logic: the default PE netlist is a live AIG with parameter inputs.
    let pe = VirtualPe::build(VirtualPeConfig::default(), true);
    let aig = logic::opt::sweep(&pe.aig);
    assert!(aig.live_ands() > 0, "PE netlist must contain gates");
    assert!(
        aig.num_inputs_of(logic::InputKind::Param) > 0,
        "parameterized PE must declare parameter inputs"
    );

    // mapping: the parameterized flow produces TLUTs/TCONs over it.
    let design = mapping::map_parameterized(&aig, mapping::MapOptions::default());
    let stats = design.stats();
    assert!(stats.luts > 0);
    assert_eq!(design.param_names.len(), pe.settings_bits());

    // dcs: extract the PPC and specialize via the SCG for one settings
    // register content.
    let cfg = dcs::ParamConfig::extract(&design);
    assert!(cfg.ppc_bits() > 0, "tunable bits must exist");
    let scg = dcs::Scg::new(&design, &cfg);
    let settings = PeSettings::mac(FpValue::from_f64(0.375, FpFormat::PAPER), 1);
    let bits = settings.to_param_bits(&pe.config);
    assert_eq!(bits.len(), design.param_names.len());
    let spec = scg.specialize(&bits);
    assert!(!scg.all_tunable_frames().is_empty());
    drop(spec);

    // par + fabric: place and route a reduced-format PE (fast enough for
    // the unoptimized test profile) on a sized fabric, driven through the
    // ParEngine facade.
    let small = VirtualPe::build(
        VirtualPeConfig { format: FpFormat::new(3, 4), hops: 2 },
        true,
    );
    let small_design =
        mapping::map_parameterized(&logic::opt::sweep(&small.aig), mapping::MapOptions::default());
    let netlist = par::extract(&small_design);
    let arch = fabric::FabricArch::sized_for(netlist.logic_count(), netlist.io_count());
    let engine = par::ParEngine::new(par::EngineOptions::default());
    let placement = engine.place(&netlist, arch);
    let graph = fabric::RouteGraph::build(arch, 20);
    let routed = engine
        .route(&netlist, &placement, &graph)
        .expect("reduced-format PE must route at a generous channel width");
    assert!(routed.wirelength > 0);
    assert!(routed.ripups >= netlist.nets.len());

    // vcgra sim: one sample through the value-level PE model...
    let x = FpValue::from_f64(2.0, FpFormat::PAPER);
    let fb = FpValue::from_f64(1.0, FpFormat::PAPER);
    let (out, _) = settings.evaluate(x, FpValue::zero(FpFormat::PAPER), fb);
    assert_eq!(out.to_f64(), 2.0 * 0.375 + 1.0);

    // ... and one sample through a mapped 3-tap application on the grid.
    let app = vcgra::app::AppGraph::dot_product(FpFormat::PAPER, &[0.25, 0.5, 0.25]);
    let m = vcgra::flow::map_app(&app, vcgra::VcgraArch::paper_4x4(), 11).expect("fits 4x4");
    let inputs: Vec<FpValue> =
        [1.0, 1.0, 1.0].iter().map(|&v| FpValue::from_f64(v, FpFormat::PAPER)).collect();
    let y = vcgra::sim::run_mapped(&m, &app, &inputs)[0];
    assert_eq!(y.to_f64(), 1.0, "low-pass of a flat signal is the signal");

    // retina: the synthetic fundus generator and the metrics close the
    // loop on the application side.
    let (img, truth) = retina::synth_fundus(&retina::SynthConfig { size: 32, ..Default::default() }, 2);
    let seg = img.g.threshold(0.5);
    let metrics = retina::Metrics::evaluate(&seg, &truth);
    assert_eq!(metrics.tp + metrics.fp + metrics.fn_ + metrics.tn, 32 * 32);
}

#[test]
fn shard_reexport_serves_a_tiny_plan() {
    // shard (which pulls runtime, trace, and verify along): a two-shard
    // tier drives a minimal seeded plan end-to-end through the umbrella
    // re-export, closing with a verified drain.
    use vcgra_repro::shard::{synthesize, LoadSpec, ShardConfig, ShardServer};
    let spec = LoadSpec { waves: 1, tenants_per_wave: 2, items_per_tenant: 2, ..LoadSpec::default() };
    let plan = synthesize(FpFormat::PAPER, &spec);
    let mut tier = ShardServer::start(ShardConfig::new(2));
    let report = vcgra_repro::shard::loadgen::run(&mut tier, &plan).expect("tiny plan serves");
    // 1 timed wave x 2 tenants x 2 items x 2 phases (pre/post swap).
    assert_eq!(report.total_items, 8);
    assert!(report.warm_hit_rate > 0.0, "priming wave must warm the caches");
    for fin in tier.shutdown() {
        assert!(fin.verify.ok(), "shard {} invariants at shutdown", fin.shard);
    }
}
