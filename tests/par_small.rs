//! Integration: place & route of small mapped designs with full audits —
//! connectivity, wire exclusivity, channel-width minimality, and the
//! TCON-sharing claim (tunable nets add no channel-width overhead).

use logic::aig::{Aig, InputKind};
use mapping::{map_conventional, map_parameterized, MapOptions};
use par::cw::ParOptions;
use par::troute::audit;

fn coeff_mul_aig(bits: usize) -> Aig {
    let mut g = Aig::new();
    let x = g.input_vec("x", bits, InputKind::Regular);
    let c = g.input_vec("c", bits, InputKind::Param);
    let p = softfloat::gates::mul_carry_save(&mut g, &x, &c);
    g.add_output_vec("p", &p);
    g
}

#[test]
fn both_flows_route_and_audit_clean() {
    let aig = coeff_mul_aig(4);
    for (label, design) in [
        ("conv", map_conventional(&aig, MapOptions::default())),
        ("par", map_parameterized(&aig, MapOptions::default())),
    ] {
        let nl = par::extract(&design);
        let rep = par::full_par(&nl, &ParOptions::default())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let graph = fabric::RouteGraph::build(rep.arch, rep.min_channel_width);
        let routed = par::route(&nl, &rep.placement, &graph, Default::default())
            .expect("re-route at min width");
        audit(&nl, &rep.placement, &graph, &routed)
            .unwrap_or_else(|e| panic!("{label} audit: {e}"));
    }
}

#[test]
fn tcons_do_not_increase_channel_width() {
    // The paper's key PaR claim: moving connections into tunable routing
    // does not raise the minimum channel width. Compare CW of the
    // parameterized design against the conventional one.
    let aig = coeff_mul_aig(5);
    let conv = map_conventional(&aig, MapOptions::default());
    let par_d = map_parameterized(&aig, MapOptions::default());
    let rep_c = par::full_par(&par::extract(&conv), &ParOptions::default()).unwrap();
    let rep_p = par::full_par(&par::extract(&par_d), &ParOptions::default()).unwrap();
    assert!(
        rep_p.min_channel_width <= rep_c.min_channel_width + 1,
        "parameterized CW {} vs conventional {}",
        rep_p.min_channel_width,
        rep_c.min_channel_width
    );
}

#[test]
fn wirelength_is_reported_and_positive() {
    let aig = coeff_mul_aig(3);
    let d = map_parameterized(&aig, MapOptions::default());
    let nl = par::extract(&d);
    let rep = par::full_par(&nl, &ParOptions::default()).unwrap();
    assert!(rep.result.wirelength > 0);
    assert!(rep.result.iterations >= 1);
    // Tunable wirelength is part of the total.
    assert!(rep.result.tunable_wirelength <= rep.result.wirelength);
}

#[test]
fn placement_seeds_are_deterministic() {
    let aig = coeff_mul_aig(3);
    let d = map_conventional(&aig, MapOptions::default());
    let nl = par::extract(&d);
    let arch = fabric::FabricArch::sized_for(nl.logic_count(), nl.io_count());
    let p1 = par::place(&nl, arch, 11);
    let p2 = par::place(&nl, arch, 11);
    assert_eq!(p1.site_of, p2.site_of, "same seed, same placement");
    assert_eq!(p1.cost, p2.cost);
}
