//! Property-based tests over the core invariants:
//!
//! * random parameterized circuits map equivalently through both flows;
//! * FloPoCo arithmetic is commutative, within rounding error of `f64`,
//!   and hardware-consistent;
//! * PE settings evaluate like the documented formulas;
//! * the synthetic image generator and metrics behave sanely.

use logic::aig::{Aig, InputKind, Lit};
use mapping::{map_conventional, map_parameterized, MapOptions};
use proptest::prelude::*;
use softfloat::{FpFormat, FpValue};

/// Builds a random parameterized circuit from a compact recipe: each gate
/// picks an operation and two earlier signals.
fn build_random_aig(ops: &[(u8, u8, u8)], n_reg: usize, n_param: usize) -> Aig {
    let mut g = Aig::new();
    let mut pool: Vec<Lit> = Vec::new();
    for i in 0..n_reg {
        pool.push(g.input(format!("x{i}"), InputKind::Regular));
    }
    for i in 0..n_param {
        pool.push(g.input(format!("p{i}"), InputKind::Param));
    }
    for &(op, a, b) in ops {
        let la = pool[a as usize % pool.len()];
        let lb = pool[b as usize % pool.len()];
        let out = match op % 5 {
            0 => g.and(la, lb),
            1 => g.or(la, lb),
            2 => g.xor(la, lb),
            3 => g.mux(la, lb, !la),
            _ => !g.and(la, !lb),
        };
        pool.push(out);
    }
    // Outputs: the last few signals.
    let n_out = pool.len().min(4);
    for (i, &l) in pool[pool.len() - n_out..].iter().enumerate() {
        g.add_output(format!("o{i}"), l);
    }
    g
}

/// The mapping-equivalence sweep dominates this binary's wall clock, so
/// its full 48-case budget hides behind the `proptest-full` feature
/// (CI's scheduled job turns it on); the default keeps `cargo test -q`
/// fast as the suite grows.
const MAP_CASES: u32 = if cfg!(feature = "proptest-full") { 48 } else { 12 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(MAP_CASES))]

    #[test]
    fn random_circuits_map_equivalently(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40),
        seed in any::<u64>(),
    ) {
        let aig = build_random_aig(&ops, 4, 3);
        let par = map_parameterized(&aig, MapOptions::default());
        let conv = map_conventional(&aig, MapOptions::default());
        verify::equiv::assert_equivalent(&aig, &par, 4, seed);
        verify::equiv::assert_equivalent(&aig, &conv, 1, seed);
        // The parameterized flow never uses more LUTs than the conventional
        // flow needs once its extra inputs are discounted — weaker, robust
        // invariant: LUT count is bounded by gate count.
        prop_assert!(par.stats().luts <= aig.num_ands() + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flopoco_commutativity(a in -1e4f64..1e4, b in -1e4f64..1e4) {
        let f = FpFormat::PAPER;
        let (x, y) = (FpValue::from_f64(a, f), FpValue::from_f64(b, f));
        prop_assert_eq!(x.add(y).bits, y.add(x).bits);
        prop_assert_eq!(x.mul(y).bits, y.mul(x).bits);
    }

    #[test]
    fn flopoco_add_error_bound(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let f = FpFormat::PAPER;
        let got = FpValue::from_f64(a, f).add(FpValue::from_f64(b, f)).to_f64();
        let exact = a + b;
        let scale = a.abs().max(b.abs()).max(exact.abs()).max(1e-30);
        prop_assert!((got - exact).abs() <= scale * 4.0 / (1u64 << 26) as f64);
    }

    #[test]
    fn flopoco_mul_error_bound(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        // mul against the f64 reference (ROADMAP: fuzz add/mul/mac vs f64).
        let f = FpFormat::PAPER;
        let got = FpValue::from_f64(a, f).mul(FpValue::from_f64(b, f)).to_f64();
        let exact = a * b;
        // Inputs round once, the product rounds once: a few ulp suffice.
        let tol = exact.abs().max(1e-30) * 4.0 / (1u64 << 26) as f64;
        prop_assert!((got - exact).abs() <= tol, "a={a} b={b} got={got} exact={exact}");
    }

    #[test]
    fn flopoco_mac_error_bound(
        x in -1e2f64..1e2,
        c in -1e2f64..1e2,
        acc in -1e3f64..1e3,
    ) {
        // mac = mul-then-add with intermediate rounding, against f64.
        let f = FpFormat::PAPER;
        let got = FpValue::from_f64(x, f)
            .mac(FpValue::from_f64(c, f), FpValue::from_f64(acc, f))
            .to_f64();
        let exact = x * c + acc;
        let scale = (x * c).abs().max(acc.abs()).max(exact.abs()).max(1e-30);
        // Three roundings (two inputs' product, one sum) plus cancellation
        // headroom via the scale term.
        prop_assert!(
            (got - exact).abs() <= scale * 8.0 / (1u64 << 26) as f64,
            "x={x} c={c} acc={acc} got={got} exact={exact}"
        );
        // And mac must be exactly mul-then-add at the bit level.
        let lhs = FpValue::from_f64(x, f).mac(FpValue::from_f64(c, f), FpValue::from_f64(acc, f));
        let rhs = FpValue::from_f64(x, f).mul(FpValue::from_f64(c, f)).add(FpValue::from_f64(acc, f));
        prop_assert_eq!(lhs.bits, rhs.bits);
    }

    #[test]
    fn flopoco_mul_identity(a in -1e4f64..1e4) {
        let f = FpFormat::PAPER;
        let x = FpValue::from_f64(a, f);
        let one = FpValue::from_f64(1.0, f);
        prop_assert_eq!(x.mul(one).bits, x.bits);
        let zero = FpValue::zero(f);
        prop_assert_eq!(x.add(zero).bits, x.bits);
    }

    #[test]
    fn roundtrip_is_idempotent(a in -1e6f64..1e6) {
        let f = FpFormat::PAPER;
        let once = FpValue::from_f64(a, f);
        let twice = FpValue::from_f64(once.to_f64(), f);
        prop_assert_eq!(once.bits, twice.bits, "rounding must be idempotent");
    }

    #[test]
    fn pe_mac_mode_formula(x in -50f64..50.0, c in -50f64..50.0, fb in -50f64..50.0) {
        let f = FpFormat::PAPER;
        let s = vcgra::PeSettings::mac(FpValue::from_f64(c, f), 1);
        let (out, fbn) = s.evaluate(
            FpValue::from_f64(x, f),
            FpValue::zero(f),
            FpValue::from_f64(fb, f),
        );
        let want = FpValue::from_f64(x, f)
            .mac(FpValue::from_f64(c, f), FpValue::from_f64(fb, f));
        prop_assert_eq!(out.bits, want.bits);
        prop_assert_eq!(fbn.bits, want.bits);
    }

    #[test]
    fn truth_table_shannon_expansion(bits in any::<u16>(), var in 0usize..4) {
        let t = logic::TruthTable::from_bits(bits as u64, 4);
        let x = logic::TruthTable::var(var, 4);
        let rebuilt = x.and(&t.cofactor1(var)).or(&x.not().and(&t.cofactor0(var)));
        prop_assert_eq!(rebuilt, t);
    }

    #[test]
    fn bdd_or_of_cover_is_tautology(n in 1usize..6) {
        // The TCON condition machinery relies on disjoint covers OR-ing to
        // true: check with one-hot covers over n variables.
        let mut m = logic::BddManager::new();
        let mut cover = logic::Bdd::FALSE;
        for v in 0..n as u32 {
            // term: var v true, all earlier vars false.
            let mut term = m.var(v);
            for u in 0..v {
                let nu = m.nvar(u);
                term = m.and(term, nu);
            }
            cover = m.or(cover, term);
        }
        // plus the all-false corner
        let mut allf = logic::Bdd::TRUE;
        for v in 0..n as u32 {
            let nv = m.nvar(v);
            allf = m.and(allf, nv);
        }
        cover = m.or(cover, allf);
        prop_assert!(cover.is_true());
    }

    #[test]
    fn metrics_bounds(seed in any::<u64>()) {
        let cfg = retina::SynthConfig { size: 48, ..Default::default() };
        let (img, truth) = retina::synth_fundus(&cfg, seed);
        // Segment with a trivial threshold; metrics must stay in [0,1].
        let seg = img.g.threshold(0.5);
        let m = retina::Metrics::evaluate(&seg, &truth);
        for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(m.tp + m.fp + m.fn_ + m.tn, 48 * 48);
    }
}
