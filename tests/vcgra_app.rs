//! Integration: applications through the VCGRA tool flow and the
//! functional simulator, including reconfiguration between filters.

use softfloat::{FpFormat, FpValue};
use vcgra::app::AppGraph;
use vcgra::flow::map_app;
use vcgra::sim::{run_dataflow, run_mapped, StreamingMac};
use vcgra::VcgraArch;

const FMT: FpFormat = FpFormat::PAPER;

fn fp(x: f64) -> FpValue {
    FpValue::from_f64(x, FMT)
}

#[test]
fn gaussian_tap_row_on_grid_matches_reference() {
    // One row of the 5x5 Gaussian denoise kernel as a dot product.
    let row = [0.0625, 0.25, 0.375, 0.25, 0.0625];
    let app = AppGraph::dot_product(FMT, &row);
    let mapping = map_app(&app, VcgraArch::paper_4x4(), 9).expect("fits");
    let samples = [0.1, 0.9, 0.4, 0.9, 0.1];
    let inputs: Vec<FpValue> = samples.iter().map(|&x| fp(x)).collect();
    let out = run_mapped(&mapping, &app, &inputs)[0];
    let reference: f64 = row.iter().zip(&samples).map(|(c, x)| c * x).sum();
    assert!(
        (out.to_f64() - reference).abs() < 1e-5,
        "got {} want {reference}",
        out.to_f64()
    );
}

#[test]
fn all_grid_settings_words_are_generated() {
    let app = AppGraph::dot_product(FMT, &[1.0, -0.5, 0.25]);
    let arch = VcgraArch::paper_4x4();
    let m = map_app(&app, arch, 4).unwrap();
    let words = m.settings_words();
    assert_eq!(words.len(), 25, "16 PE + 9 VSB registers (Table II)");
    // Used PEs carry their counter; unused PEs are zero.
    let used: usize = m.pe_settings.iter().filter(|s| s.is_some()).count();
    let nonzero = words[..16].iter().filter(|&&w| w != 0).count();
    assert_eq!(nonzero, used);
}

#[test]
fn reconfiguring_coefficients_changes_the_filter() {
    // Same topology, two coefficient sets: only settings change — that is
    // the paper's reconfiguration story (no re-synthesis, no re-PaR).
    let low_pass = [0.25, 0.5, 0.25];
    let edge = [-1.0, 2.0, -1.0];
    let app_a = AppGraph::dot_product(FMT, &low_pass);
    let app_b = AppGraph::dot_product(FMT, &edge);
    let arch = VcgraArch::paper_4x4();
    let ma = map_app(&app_a, arch, 5).unwrap();
    let mb = map_app(&app_b, arch, 5).unwrap();
    // Identical structure -> identical placement and routing.
    assert_eq!(ma.place, mb.place);
    assert_eq!(ma.virtual_wirelength, mb.virtual_wirelength);
    // Different settings.
    let wa = ma.settings_words();
    let wb = mb.settings_words();
    assert_eq!(wa.len(), wb.len());
    let inputs: Vec<FpValue> = [1.0, 1.0, 1.0].iter().map(|&x| fp(x)).collect();
    let ya = run_mapped(&ma, &app_a, &inputs)[0].to_f64();
    let yb = run_mapped(&mb, &app_b, &inputs)[0].to_f64();
    assert_eq!(ya, 1.0, "low-pass of flat signal");
    assert_eq!(yb, 0.0, "edge detector on flat signal");
}

#[test]
fn streaming_mac_window_equals_spatial_tree() {
    let coeffs = [0.5, 0.25, 0.125, 0.0625];
    let window = [2.0, 4.0, 8.0, 16.0];
    // Spatial: adder tree over 4 MULs.
    let app = AppGraph::dot_product(FMT, &coeffs);
    let inputs: Vec<FpValue> = window.iter().map(|&x| fp(x)).collect();
    let spatial = run_dataflow(&app, &inputs)[0].to_f64();
    // Temporal: one MAC PE, counter = 4 (the paper's execution model).
    let mut pe = StreamingMac::new(fp(0.5), 4);
    let mut out = None;
    for (i, &x) in window.iter().enumerate() {
        pe.set_coeff(fp(coeffs[i]));
        out = pe.step(fp(x));
    }
    let temporal = out.expect("window complete").to_f64();
    assert_eq!(spatial, temporal, "4.0 both ways");
}

#[test]
fn larger_grids_accept_larger_kernels() {
    // A 9-tap kernel needs 17 PEs: too big for 4x4, fits on 6x6.
    let coeffs = [1.0f64; 9];
    let app = AppGraph::dot_product(FMT, &coeffs);
    assert!(map_app(&app, VcgraArch::paper_4x4(), 1).is_err());
    let m = map_app(&app, VcgraArch::new(6, 6, 2), 1).expect("fits 6x6");
    assert_eq!(m.place.len(), 17);
}
